package transform

import (
	"context"
	"errors"
	"fmt"
	"strings"
	"testing"

	"repro/internal/exec"
	"repro/internal/ir"
	"repro/internal/kernels"
	"repro/internal/verify"
)

// twoTemps builds one nest with two scalar-like temporary arrays, both
// contractible, feeding an output that is printed.
func twoTemps(n int64) *ir.Program {
	p := ir.NewProgram("twotemps").DeclareConst("n", n)
	p.DeclareArray("t1", int(n))
	p.DeclareArray("t2", int(n))
	p.DeclareArray("b", int(n))
	p.AddNest("l1",
		ir.Loop("i", ir.N(0), ir.SubE(ir.V("n"), ir.N(1)),
			ir.Let(ir.At("t1", ir.V("i")), ir.MulE(ir.V("i"), ir.N(3))),
			ir.Let(ir.At("t2", ir.V("i")), ir.AddE(ir.At("t1", ir.V("i")), ir.N(1))),
			ir.Let(ir.At("b", ir.V("i")), ir.MulE(ir.At("t2", ir.V("i")), ir.N(2)))),
		ir.Loop("i", ir.N(0), ir.SubE(ir.V("n"), ir.N(1)),
			ir.Show(ir.At("b", ir.V("i")))))
	return p
}

func mustRun(t *testing.T, p *ir.Program) *exec.Result {
	t.Helper()
	r, err := exec.Run(p, nil)
	if err != nil {
		t.Fatalf("run %s: %v", p.Name, err)
	}
	return r
}

// TestPanickingPassIsContained injects a pass that panics and checks
// the manager converts it into a structured skip, keeping the last
// known-good program untouched.
func TestPanickingPassIsContained(t *testing.T) {
	p := twoTemps(8)
	m := newManager(context.Background(), p, Config{Verify: verify.ModeStructural})
	before := m.cur.String()
	ok := m.runStep("boom", "l1", "t1", func(cur *ir.Program) (*ir.Program, []Action, error) {
		panic("injected fault")
	})
	if ok {
		t.Fatal("panicking step reported success")
	}
	if got := m.cur.String(); got != before {
		t.Fatal("known-good program modified by a panicking pass")
	}
	if len(m.out.Skipped) != 1 {
		t.Fatalf("skipped = %v, want one entry", m.out.Skipped)
	}
	pe := m.out.Skipped[0]
	if !pe.Panicked || pe.Pass != "boom" || pe.Nest != "l1" || pe.Array != "t1" {
		t.Fatalf("PassError = %+v, want panicked boom at l1/t1", pe)
	}
	if !strings.Contains(pe.Error(), "panicked") || !strings.Contains(pe.Error(), "injected fault") {
		t.Fatalf("PassError message %q lacks panic attribution", pe.Error())
	}
	if len(m.out.Actions) != 1 || !m.out.Actions[0].Skipped {
		t.Fatalf("actions = %v, want one skipped action", m.out.Actions)
	}
	// The step is blacklisted: a retry must not re-record the failure.
	if m.runStep("boom", "l1", "t1", func(*ir.Program) (*ir.Program, []Action, error) {
		t.Fatal("blacklisted step re-executed")
		return nil, nil, nil
	}) {
		t.Fatal("blacklisted step reported success")
	}
	if len(m.out.Skipped) != 1 {
		t.Fatalf("blacklisted retry re-recorded: %v", m.out.Skipped)
	}
}

// TestInvalidResultIsRolledBack injects a pass returning a structurally
// broken program and checks it is rejected and rolled back.
func TestInvalidResultIsRolledBack(t *testing.T) {
	p := twoTemps(8)
	m := newManager(context.Background(), p, Config{Verify: verify.ModeStructural})
	ok := m.runStep("bad", "", "", func(cur *ir.Program) (*ir.Program, []Action, error) {
		q := cur.Clone()
		// Reference an undeclared array: fails Validate inside Structural.
		q.Nests[0].Body = append(q.Nests[0].Body,
			ir.Let(ir.At("nosuch", ir.N(0)), ir.N(1)))
		return q, []Action{{Pass: "bad"}}, nil
	})
	if ok {
		t.Fatal("invalid checkpoint accepted")
	}
	if len(m.out.Skipped) != 1 || m.out.Skipped[0].Panicked {
		t.Fatalf("skipped = %+v, want one non-panic entry", m.out.Skipped)
	}
	if err := m.cur.Validate(); err != nil {
		t.Fatalf("known-good program corrupted: %v", err)
	}
	if m.out.Checkpoints != 0 {
		t.Fatalf("checkpoints = %d, want 0", m.out.Checkpoints)
	}
}

// TestDivergentResultIsRolledBack injects a semantics-changing pass
// under differential verification.
func TestDivergentResultIsRolledBack(t *testing.T) {
	p := twoTemps(8)
	want := mustRun(t, p)
	m := newManager(context.Background(), p, Config{Verify: verify.ModeDifferential})
	ok := m.runStep("wrong", "", "", func(cur *ir.Program) (*ir.Program, []Action, error) {
		q := cur.Clone()
		// Change the printed expression: observably different.
		q.Nests[0].Body = append(q.Nests[0].Body, ir.Show(ir.N(42)))
		return q, []Action{{Pass: "wrong"}}, nil
	})
	if ok {
		t.Fatal("divergent checkpoint accepted under differential verification")
	}
	var d *verify.Divergence
	if len(m.out.Skipped) != 1 || !errors.As(m.out.Skipped[0], &d) {
		t.Fatalf("skipped = %+v, want one entry wrapping a Divergence", m.out.Skipped)
	}
	got := mustRun(t, m.cur)
	if err := verify.CompareResults(want, got, 0); err != nil {
		t.Fatalf("rolled-back program diverged from original: %v", err)
	}
}

// TestFixpointBudgetExhaustion runs the storage pass with a one-scan
// budget over a program needing two contractions: the pipeline must
// stop, record the exhaustion, and still return a valid, equivalent
// program.
func TestFixpointBudgetExhaustion(t *testing.T) {
	p := twoTemps(8)
	want := mustRun(t, p)
	q, out, err := OptimizeVerified(p, Config{
		Options:          Options{ReduceStorage: true},
		Verify:           verify.ModeDifferential,
		MaxFixpointIters: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	var budgetSkip *PassError
	for _, pe := range out.Skipped {
		if strings.Contains(pe.Cause.Error(), "budget") {
			budgetSkip = pe
		}
	}
	if budgetSkip == nil {
		t.Fatalf("no budget-exhaustion skip recorded; skipped = %v", out.Skipped)
	}
	if budgetSkip.Pass != "reduce-storage" {
		t.Fatalf("budget skip attributed to %q, want reduce-storage", budgetSkip.Pass)
	}
	if out.Checkpoints == 0 {
		t.Fatal("no checkpoint committed before exhaustion")
	}
	if err := verify.CompareResults(want, mustRun(t, q), 0); err != nil {
		t.Fatalf("degraded output diverged: %v", err)
	}
}

// TestUnlimitedBudgetContractsBoth is the control: with default budgets
// both temporaries contract.
func TestUnlimitedBudgetContractsBoth(t *testing.T) {
	q, out, err := OptimizeVerified(twoTemps(8), Config{
		Options: Options{ReduceStorage: true},
		Verify:  verify.ModeDifferential,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(out.Skipped) != 0 {
		t.Fatalf("unexpected skips: %v", out.Skipped)
	}
	contracts := 0
	for _, a := range out.Actions {
		if a.Pass == "contract" {
			contracts++
		}
	}
	if contracts != 2 {
		t.Fatalf("contracted %d arrays, want 2 (actions %v)", contracts, out.Actions)
	}
	for _, a := range q.Arrays {
		if a.Name == "t1" || a.Name == "t2" {
			t.Fatalf("temporary %s survived contraction", a.Name)
		}
	}
}

// TestKernelsDifferentialVerified is the acceptance gate: the full
// pipeline under differential verification over every kernel must
// apply cleanly (no skips) and preserve observable results.
func TestKernelsDifferentialVerified(t *testing.T) {
	progs := []*ir.Program{
		kernels.Sec21Write(64), kernels.Sec21Read(64), kernels.Sec21Pair(64),
		kernels.Fig7Original(24), kernels.Fig8Workload(16),
		kernels.Fig6Original(24), kernels.Fig6Fused(24), kernels.Fig6ShrunkPeeled(24),
		kernels.Convolution(32), kernels.Dmxpy(12), kernels.MatmulJKI(8),
		kernels.MustMatmulBlocked(8, 4), kernels.MustFFT(16),
		kernels.SP(8), kernels.Sweep3D(6, 4),
	}
	for _, name := range kernels.StrideKernelNames {
		progs = append(progs, kernels.MustStrideKernel(name, 64))
	}
	for _, p := range progs {
		p := p
		t.Run(p.Name, func(t *testing.T) {
			want := mustRun(t, p)
			q, out, err := OptimizeVerified(p, Config{Options: All(), Verify: verify.ModeDifferential})
			if err != nil {
				t.Fatal(err)
			}
			if out.Mode != verify.ModeDifferential {
				t.Fatalf("mode degraded to %v: %v", out.Mode, out.Notes)
			}
			for _, pe := range out.Skipped {
				t.Errorf("skipped: %v", pe)
			}
			if err := verify.CompareResults(want, mustRun(t, q), 0); err != nil {
				t.Fatalf("optimized %s diverged: %v", p.Name, err)
			}
			if err := verify.Structural(q); err != nil {
				t.Fatalf("optimized %s structurally invalid: %v", p.Name, err)
			}
		})
	}
}

// TestOptimizeCompatWrapper checks the legacy entry point matches the
// verified manager with verification off.
func TestOptimizeCompatWrapper(t *testing.T) {
	p := twoTemps(8)
	q1, acts1, err := Optimize(p, All())
	if err != nil {
		t.Fatal(err)
	}
	q2, out, err := OptimizeVerified(p, Config{Options: All()})
	if err != nil {
		t.Fatal(err)
	}
	if q1.String() != q2.String() {
		t.Fatal("Optimize and OptimizeVerified disagree")
	}
	if fmt.Sprint(acts1) != fmt.Sprint(out.Actions) {
		t.Fatalf("action logs differ: %v vs %v", acts1, out.Actions)
	}
}
