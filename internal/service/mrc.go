package service

import (
	"sort"

	"repro/internal/balance"
)

// Reuse-distance requests: the "mrc": true flag on analyze and
// optimize asks for the one-pass Mattson sweep (balance.MeasureMRC) —
// miss-ratio curves per cache level, the capacity knee against every
// registered machine's balance, and the phase timeline of the access
// stream. Like profiling, the sweep re-runs the program on a
// site-tagged clone (roughly one extra measurement plus the per-access
// order-statistic bookkeeping), so the degradation ladder sheds it at
// the same rung. The effective flag is part of the cache address: an
// mrc-shed response is never served to a full-service mrc request, and
// vice versa.

// mrcAllowed reports whether a degradation rung affords the
// reuse-distance sweep. Shed from rung 1 (degradeNoDiff) up, alongside
// traffic attribution and differential verification.
func (l degradeLevel) mrcAllowed() bool { return l < degradeNoDiff }

// observeMRC feeds one reuse-distance result into telemetry and the
// dashboard: the per-kernel bwserved_ws_knee_bytes gauges (only
// kernel-named requests have a stable identity to label a metric
// with), and the most recent curve per kernel behind the /debug/dash
// MRC panel.
func (s *Server) observeMRC(kernel string, m *balance.MRCResult) {
	if m == nil || kernel == "" {
		return
	}
	for i := range m.Knees {
		k := &m.Knees[i]
		v := float64(-1) // demand never meets this machine's balance
		if k.Met {
			v = float64(k.KneeBytes)
		}
		s.wsKnee.With(kernel, k.Machine).Set(v)
	}
	s.mrcMu.Lock()
	s.lastMRCs[kernel] = m
	s.mrcMu.Unlock()
}

// lastMRCSnapshots returns the most recent reuse-distance result per
// kernel, kernel names sorted, for the dashboard panel.
func (s *Server) lastMRCSnapshots() []kernelMRC {
	s.mrcMu.Lock()
	defer s.mrcMu.Unlock()
	out := make([]kernelMRC, 0, len(s.lastMRCs))
	for k, m := range s.lastMRCs {
		out = append(out, kernelMRC{Kernel: k, Result: m})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Kernel < out[j].Kernel })
	return out
}

// kernelMRC pairs a kernel name with its latest reuse-distance result.
type kernelMRC struct {
	Kernel string
	Result *balance.MRCResult
}
