package bounds

import (
	"context"
	"fmt"
	"sort"

	"repro/internal/exec"
	"repro/internal/ir"
)

// Footprint is the compulsory-traffic census of one program run:
// distinct elements touched, read before written (live-in) and ever
// written (live-out), in elements of ElemSize bytes.
type Footprint struct {
	// TouchedElems is the number of distinct array elements accessed.
	TouchedElems int64 `json:"touched_elems"`
	// LiveInElems is the number of distinct elements whose first access
	// is a read: their initial value lives in slow memory and must cross
	// the channel at least once.
	LiveInElems int64 `json:"live_in_elems"`
	// LiveOutElems is the number of distinct elements the program
	// writes: each holds a final value that must reach slow memory.
	LiveOutElems int64 `json:"live_out_elems"`
	// Arrays breaks the census down per array, sorted by name.
	Arrays []ArrayFootprint `json:"arrays,omitempty"`
}

// ArrayFootprint is the per-array slice of the census.
type ArrayFootprint struct {
	Array   string `json:"array"`
	Touched int64  `json:"touched"`
	LiveIn  int64  `json:"live_in"`
	LiveOut int64  `json:"live_out"`
}

// BoundBytes returns the array's own compulsory floor: 8 bytes per
// live-in and live-out element, the per-array decomposition of
// Footprint.Bound. Summed over Arrays it reproduces the whole-program
// compulsory bound, so per-array optimality gaps (measured per-array
// traffic over this floor) decompose the program gap the same way the
// attribution profiler decomposes traffic.
func (a ArrayFootprint) BoundBytes() int64 {
	return (a.LiveIn + a.LiveOut) * ElemSize
}

// Bound returns the compulsory-traffic lower bound: 8 bytes per live-in
// element in, 8 per live-out element out. Element granularity
// undercounts line-granularity measured traffic (a line transfer moves
// whole lines), which is exactly the direction soundness needs.
func (f *Footprint) Bound() Bound {
	return Bound{
		Bytes: (f.LiveInElems + f.LiveOutElems) * ElemSize,
		Kind:  KindCompulsory,
		Assumptions: []string{
			"initial array values reside in slow memory (live-in elements each cross the channel at least once)",
			"written elements reach slow memory by program end (dirty lines flush; write-through forwards stores)",
			"element granularity (8 B) — never above the line-granularity traffic the simulator measures",
		},
	}
}

// footprintMachine implements exec.Machine, recording per-element
// first-access direction instead of simulating caches. Element state is
// a dense byte array over the compiled engine's address space (arrays
// laid out back to back with alignment padding), indexed by addr/8.
type footprintMachine struct {
	state  []uint8 // per element: seen/written bits
	bounds []arrayRange
	fp     Footprint
	per    []ArrayFootprint
}

type arrayRange struct {
	lo, hi int64 // [lo,hi) byte addresses
	idx    int   // index into per
}

const (
	fpSeen    uint8 = 1 << 0
	fpWritten uint8 = 1 << 1
)

// maxFootprintBytes caps the dense state allocation (1 byte per
// element, so 2 GiB of simulated arrays -> 256 MiB of state).
const maxFootprintBytes = int64(2) << 30

// newFootprintMachine lays out the arrays exactly as the compiled
// engine does (exec.Compiled.RunCtx): consecutive, each rounded up to
// the 128-byte alignment plus one guard line. The layouts must agree so
// per-array attribution of the addresses the engine emits is exact; the
// totals are layout-independent.
func newFootprintMachine(p *ir.Program) (*footprintMachine, error) {
	const align = 128
	m := &footprintMachine{}
	var next int64
	for i, a := range p.Arrays {
		lo := next
		next += a.Bytes()
		m.bounds = append(m.bounds, arrayRange{lo: lo, hi: next, idx: i})
		m.per = append(m.per, ArrayFootprint{Array: a.Name})
		next = (next + align - 1) &^ (align - 1)
		next += align
	}
	if next > maxFootprintBytes {
		return nil, fmt.Errorf("bounds: program arrays span %d bytes, above the %d footprint cap", next, maxFootprintBytes)
	}
	m.state = make([]uint8, next/ElemSize+1)
	return m, nil
}

func (m *footprintMachine) access(addr int64, size int, write bool) {
	for off := int64(0); off < int64(size); off += ElemSize {
		i := (addr + off) / ElemSize
		if i < 0 || i >= int64(len(m.state)) {
			continue // defensive: engine addresses outside the layout
		}
		s := m.state[i]
		ai := -1
		if s&fpSeen == 0 {
			m.state[i] |= fpSeen
			m.fp.TouchedElems++
			ai = m.arrayAt(addr + off)
			if ai >= 0 {
				m.per[ai].Touched++
			}
			if !write {
				m.fp.LiveInElems++
				if ai >= 0 {
					m.per[ai].LiveIn++
				}
			}
		}
		if write && s&fpWritten == 0 {
			m.state[i] |= fpWritten
			m.fp.LiveOutElems++
			if ai < 0 {
				ai = m.arrayAt(addr + off)
			}
			if ai >= 0 {
				m.per[ai].LiveOut++
			}
		}
	}
}

// arrayAt maps a byte address to its array's index, or -1 for padding.
func (m *footprintMachine) arrayAt(addr int64) int {
	n := sort.Search(len(m.bounds), func(i int) bool { return m.bounds[i].hi > addr })
	if n < len(m.bounds) && addr >= m.bounds[n].lo {
		return m.bounds[n].idx
	}
	return -1
}

func (m *footprintMachine) Load(addr int64, size int)  { m.access(addr, size, false) }
func (m *footprintMachine) Store(addr int64, size int) { m.access(addr, size, true) }
func (m *footprintMachine) AddFlops(n int64)           {}
func (m *footprintMachine) Flush()                     {}

// ComputeFootprint runs p once on the footprint recorder under the
// compiled engine. A zero lim.MaxSteps applies DefaultMaxSteps so a
// hostile program cannot wedge the caller.
func ComputeFootprint(ctx context.Context, p *ir.Program, lim exec.Limits) (*Footprint, error) {
	cp, err := exec.Compile(p)
	if err != nil {
		return nil, err
	}
	return computeFootprintCompiled(ctx, p, cp, lim)
}

func computeFootprintCompiled(ctx context.Context, p *ir.Program, cp *exec.Compiled, lim exec.Limits) (*Footprint, error) {
	if lim.MaxSteps == 0 {
		lim.MaxSteps = DefaultMaxSteps
	}
	m, err := newFootprintMachine(p)
	if err != nil {
		return nil, err
	}
	if _, err := cp.RunCtx(ctx, m, lim); err != nil {
		return nil, fmt.Errorf("bounds: footprint run: %w", err)
	}
	fp := m.fp
	for _, a := range m.per {
		if a.Touched > 0 {
			fp.Arrays = append(fp.Arrays, a)
		}
	}
	sort.Slice(fp.Arrays, func(i, j int) bool { return fp.Arrays[i].Array < fp.Arrays[j].Array })
	return &fp, nil
}
