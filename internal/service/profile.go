package service

import (
	"sort"

	"repro/internal/balance"
)

// Profiled requests: the "profile": true flag on analyze and optimize
// asks for per-array traffic attribution (balance.MeasureProfiled).
// Profiling roughly doubles a request's measurement cost (the profiled
// run re-measures on a site-tagged clone, and optimize additionally
// replays every committed-pass snapshot), so the degradation ladder
// sheds it first — at the same rung that sheds differential
// verification and the pebbling bound. The effective profile flag is
// part of the cache address: a profile-shed response is never served
// to a full-service profiled request, and vice versa.

// profileAllowed reports whether a degradation rung affords traffic
// attribution. Shed from rung 1 (degradeNoDiff) up, alongside
// differential verification and the pebbling bound.
func (l degradeLevel) profileAllowed() bool { return l < degradeNoDiff }

// observeProfile feeds one attribution result into telemetry and the
// dashboard: the per-kernel bwserved_array_traffic_bytes gauges (only
// kernel-named requests have a stable identity to label a metric
// with), and the most recent per-kernel attribution behind the
// /debug/dash traffic heatmap.
func (s *Server) observeProfile(kernel string, sum *balance.ProfileSummary) {
	if sum == nil || kernel == "" {
		return
	}
	for _, at := range sum.Arrays {
		for i, name := range sum.LevelNames {
			if i < len(at.LevelBytes) {
				s.arrayTraffic.With(kernel, at.Array, name).Set(float64(at.LevelBytes[i]))
			}
		}
	}
	s.profMu.Lock()
	s.lastProfiles[kernel] = sum
	s.profMu.Unlock()
}

// lastProfileSnapshots returns the most recent attribution per kernel,
// kernel names sorted, for the dashboard heatmap.
func (s *Server) lastProfileSnapshots() []kernelProfile {
	s.profMu.Lock()
	defer s.profMu.Unlock()
	out := make([]kernelProfile, 0, len(s.lastProfiles))
	for k, sum := range s.lastProfiles {
		out = append(out, kernelProfile{Kernel: k, Summary: sum})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Kernel < out[j].Kernel })
	return out
}

// kernelProfile pairs a kernel name with its latest attribution.
type kernelProfile struct {
	Kernel  string
	Summary *balance.ProfileSummary
}
