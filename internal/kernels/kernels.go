// Package kernels provides every program of the paper's evaluation,
// expressed in the loop-nest IR: the Section 2.1 write-vs-read pair,
// the Figure 1 application set (convolution, dmxpy, matrix multiply in
// -O2 and -O3 flavours, FFT, an SP-like ADI solver, a Sweep3D-like
// wavefront sweep), the Figure 3 stride-one kernels, and the Figure 6
// and Figure 7 example programs in their original and hand-transformed
// forms.
//
// Kernels are built from concrete syntax via the lang parser; sizes are
// parameters so tests run small and the benchmark harness runs at
// paper scale.
package kernels

import (
	"fmt"
	"strings"

	"repro/internal/ir"
	"repro/internal/lang"
)

func mustParse(src string) *ir.Program { return lang.MustParse(src) }

// Sec21Write is the first loop of Section 2.1: a read-modify-write
// sweep ("A[i] = A[i] + 0.4") whose writebacks double its memory
// traffic.
func Sec21Write(n int) *ir.Program {
	return mustParse(fmt.Sprintf(`
program sec21_write
const N = %d
array a[N]
loop L1 {
  for i = 0, N - 1 { a[i] = a[i] + 0.4 }
}
`, n))
}

// Sec21Read is the second loop of Section 2.1: a pure reduction with
// the same reads and the same flop count, but no writebacks.
func Sec21Read(n int) *ir.Program {
	return mustParse(fmt.Sprintf(`
program sec21_read
const N = %d
array a[N]
scalar sum
loop L1 {
  for i = 0, N - 1 { sum = sum + a[i] }
}
`, n))
}

// Sec21Pair is both loops in one program — the fusion candidate used by
// the optimization experiments.
func Sec21Pair(n int) *ir.Program {
	return mustParse(fmt.Sprintf(`
program sec21
const N = %d
array a[N]
scalar sum
loop L1 {
  for i = 0, N - 1 { a[i] = a[i] + 0.4 }
}
loop L2 {
  for i = 0, N - 1 { sum = sum + a[i] }
}
`, n))
}

// StrideKernelNames lists the Figure 3 kernels in the paper's plot
// order. Each kernel "XwYr" reads Y arrays and writes X of them, all in
// unit stride.
var StrideKernelNames = []string{
	"1w1r", "2w2r", "3w3r", "1w2r", "1w3r", "1w4r", "2w3r", "2w5r", "3w6r",
	"0w1r", "0w2r", "0w3r",
}

// StrideKernel builds one of the Figure 3 kernels over arrays of n
// elements.
func StrideKernel(name string, n int) (*ir.Program, error) {
	body, arrays, ok := strideBody(name)
	if !ok {
		return nil, fmt.Errorf("kernels: unknown stride kernel %q", name)
	}
	var b strings.Builder
	fmt.Fprintf(&b, "program k%s\nconst N = %d\n", name, n)
	for _, a := range arrays {
		fmt.Fprintf(&b, "array %s[N]\n", a)
	}
	b.WriteString("scalar sum\nloop L1 {\n  for i = 0, N - 1 {\n")
	for _, line := range body {
		fmt.Fprintf(&b, "    %s\n", line)
	}
	b.WriteString("  }\n}\n")
	return lang.Parse(b.String())
}

// MustStrideKernel panics on unknown names; for tests and the harness.
func MustStrideKernel(name string, n int) *ir.Program {
	p, err := StrideKernel(name, n)
	if err != nil {
		panic(err)
	}
	return p
}

func strideBody(name string) (body []string, arrays []string, ok bool) {
	switch name {
	case "1w1r":
		return []string{"a[i] = a[i] + 0.5"}, []string{"a"}, true
	case "2w2r":
		return []string{"a[i] = a[i] + 0.5", "b[i] = b[i] + 0.5"}, []string{"a", "b"}, true
	case "3w3r":
		return []string{"a[i] = a[i] + 0.5", "b[i] = b[i] + 0.5", "c[i] = c[i] + 0.5"},
			[]string{"a", "b", "c"}, true
	case "1w2r":
		return []string{"a[i] = a[i] + b[i]"}, []string{"a", "b"}, true
	case "1w3r":
		return []string{"a[i] = a[i] + b[i] + c[i]"}, []string{"a", "b", "c"}, true
	case "1w4r":
		return []string{"a[i] = a[i] + b[i] + c[i] + d[i]"}, []string{"a", "b", "c", "d"}, true
	case "2w3r":
		return []string{"a[i] = a[i] + c[i]", "b[i] = b[i] + c[i]"}, []string{"a", "b", "c"}, true
	case "2w5r":
		return []string{"a[i] = a[i] + c[i] + d[i]", "b[i] = b[i] + e[i]"},
			[]string{"a", "b", "c", "d", "e"}, true
	case "3w6r":
		return []string{"a[i] = a[i] + d[i]", "b[i] = b[i] + e[i]", "c[i] = c[i] + g1[i]"},
			[]string{"a", "b", "c", "d", "e", "g1"}, true
	case "0w1r":
		return []string{"sum = sum + a[i]"}, []string{"a"}, true
	case "0w2r":
		return []string{"sum = sum + a[i] + b[i]"}, []string{"a", "b"}, true
	case "0w3r":
		return []string{"sum = sum + a[i] + b[i] + c[i]"}, []string{"a", "b", "c"}, true
	}
	return nil, nil, false
}

// Fig7Original is the Figure 7(a) program: one loop updates res, a
// second sums it. The optimization experiments derive the fused (b) and
// store-eliminated (c) forms from it with the transformation passes.
func Fig7Original(n int) *ir.Program {
	return mustParse(fmt.Sprintf(`
program fig7
const N = %d
array res[N]
array data[N]
scalar sum

loop Init {
  for i = 0, N - 1 { read data[i] }
}

loop Update {
  for i = 0, N - 1 { res[i] = res[i] + data[i] }
}

loop Sum {
  sum = 0
  for i = 0, N - 1 { sum = sum + res[i] }
  print sum
}
`, n))
}

// Fig8Workload is the store-elimination benchmark of Figure 8: exactly
// the two loops of Figure 7(a), with res and data pre-existing in
// memory (the simulator is value-blind, so zero-filled data exercises
// identical memory behaviour). The experiment derives the "fusion
// only" and "store elimination" variants with the transformation
// passes and times all three.
func Fig8Workload(n int) *ir.Program {
	return mustParse(fmt.Sprintf(`
program fig8
const N = %d
array res[N]
array data[N]
scalar sum

loop Update {
  for i = 0, N - 1 { res[i] = res[i] + data[i] }
}

loop Sum {
  sum = 0
  for i = 0, N - 1 { sum = sum + res[i] }
  print sum
}
`, n))
}

// Fig6Original is Figure 6(a): initialization of a[N,N], computation of
// b[N,N] = f(a shifted), a last-column fix-up with g, and a checksum.
// Indices are 1-based as in the paper; arrays are declared one larger
// and row/column 0 is unused.
func Fig6Original(n int) *ir.Program {
	return mustParse(fmt.Sprintf(`
program fig6a
const N = %d
array a[N+1, N+1]
array b[N+1, N+1]
scalar sum

loop Init {
  for j = 1, N {
    for i = 1, N { read a[i,j] }
  }
}

loop Comp {
  for j = 2, N {
    for i = 1, N { b[i,j] = f(a[i,j-1], a[i,j]) }
  }
}

loop Last {
  for i = 1, N { b[i,N] = g(b[i,N], a[i,1]) }
}

loop Check {
  sum = 0
  for j = 2, N {
    for i = 1, N { sum = sum + a[i,j] + b[i,j] }
  }
  print sum
}
`, n))
}

// Fig6Fused is Figure 6(b): the paper's hand-fused form, with the
// first column peeled into its own read loop and the last-column
// fix-up folded in under a guard.
func Fig6Fused(n int) *ir.Program {
	return mustParse(fmt.Sprintf(`
program fig6b
const N = %d
array a[N+1, N+1]
array b[N+1, N+1]
scalar sum

loop Fused {
  sum = 0
  for i = 1, N { read a[i,1] }
  for j = 2, N {
    for i = 1, N {
      read a[i,j]
      b[i,j] = f(a[i,j-1], a[i,j])
      if j <= N - 1 {
        sum = sum + a[i,j] + b[i,j]
      } else {
        b[i,N] = g(b[i,N], a[i,1])
        sum = sum + b[i,N] + a[i,N]
      }
    }
  }
  print sum
}
`, n))
}

// Fig6ShrunkPeeled is Figure 6(c): after array shrinking and peeling,
// the two N x N arrays are replaced by two length-N arrays (a1 peels
// the first column, a3 carries one j-iteration) and two scalars (a2
// holds the current element, b1 the current b value).
func Fig6ShrunkPeeled(n int) *ir.Program {
	return mustParse(fmt.Sprintf(`
program fig6c
const N = %d
array a1[N+1]
array a3[N+1]
scalar a2
scalar b1
scalar sum

loop Fused {
  sum = 0
  for i = 1, N { read a1[i] }
  for j = 2, N {
    for i = 1, N {
      read a2
      if j == 2 {
        b1 = f(a1[i], a2)
      } else {
        b1 = f(a3[i], a2)
      }
      if j <= N - 1 {
        sum = sum + a2 + b1
        a3[i] = a2
      } else {
        b1 = g(b1, a1[i])
        sum = sum + b1 + a2
      }
    }
  }
  print sum
}
`, n))
}
