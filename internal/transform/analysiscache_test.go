package transform

import (
	"fmt"
	"testing"

	"repro/internal/analysis"
	"repro/internal/deps"
	"repro/internal/fusion"
	"repro/internal/ir"
	"repro/internal/kernels"
	"repro/internal/lang"
	"repro/internal/liveness"
)

// paperKernels are the programs the acceptance criteria measure the
// analysis cache on.
func paperKernels(t *testing.T) map[string]*ir.Program {
	t.Helper()
	return map[string]*ir.Program{
		"fig7": kernels.Fig7Original(64),
		"fig6": kernels.Fig6Original(32),
		"fig8": kernels.Fig8Workload(48),
	}
}

// TestAnalysisCacheConsistency is the property test behind the
// preserved-set declarations: after every committed checkpoint of the
// default pipeline, each cached analysis must equal a fresh
// recomputation on the new program version. A failure here means a
// pass declared it preserves an analysis its mutation can change.
func TestAnalysisCacheConsistency(t *testing.T) {
	if testPostCommit != nil {
		t.Fatal("testPostCommit already hooked")
	}
	commits := 0
	testPostCommit = func(m *manager) {
		commits++
		checkCachedAgainstFresh(t, m)
	}
	defer func() { testPostCommit = nil }()

	for name, p := range paperKernels(t) {
		if _, out, err := OptimizeVerified(p, Config{Options: All()}); err != nil {
			t.Fatalf("%s: %v", name, err)
		} else if out.Checkpoints == 0 {
			t.Fatalf("%s: pipeline committed nothing; property test exercised no state", name)
		}
	}
	if commits == 0 {
		t.Fatal("post-commit hook never ran")
	}
}

// checkCachedAgainstFresh compares every analysis the manager can serve
// (cached or not) against a from-scratch recomputation on the current
// program, projecting each result onto comparable facts.
func checkCachedAgainstFresh(t *testing.T, m *manager) {
	t.Helper()
	p := m.am.Program()
	if p != m.cur {
		t.Fatalf("analysis manager program out of sync with pass manager")
	}

	gotDeps, err := m.am.Deps()
	if err != nil {
		t.Fatalf("cached deps: %v", err)
	}
	wantDeps, err := deps.Analyze(p)
	if err != nil {
		t.Fatalf("fresh deps: %v", err)
	}
	for a := 0; a < len(p.Nests); a++ {
		for b := a + 1; b < len(p.Nests); b++ {
			if gotDeps.HasDep(a, b) != wantDeps.HasDep(a, b) {
				t.Fatalf("gen %d: cached HasDep(%d,%d)=%v, fresh=%v",
					m.am.Generation(), a, b, gotDeps.HasDep(a, b), wantDeps.HasDep(a, b))
			}
			if gotDeps.Preventing(a, b) != wantDeps.Preventing(a, b) {
				t.Fatalf("gen %d: cached Preventing(%d,%d)=%v, fresh=%v",
					m.am.Generation(), a, b, gotDeps.Preventing(a, b), wantDeps.Preventing(a, b))
			}
		}
	}

	gotLive, err := m.am.Liveness()
	if err != nil {
		t.Fatalf("cached liveness: %v", err)
	}
	wantLive, err := liveness.Analyze(p)
	if err != nil {
		t.Fatalf("fresh liveness: %v", err)
	}
	for _, arr := range p.Arrays {
		for ni := range p.Nests {
			if gotLive.LiveAfter(arr.Name, ni) != wantLive.LiveAfter(arr.Name, ni) {
				t.Fatalf("gen %d: cached LiveAfter(%s,%d)=%v, fresh=%v",
					m.am.Generation(), arr.Name, ni, gotLive.LiveAfter(arr.Name, ni), wantLive.LiveAfter(arr.Name, ni))
			}
		}
	}

	idx, err := m.am.NestIndex()
	if err != nil {
		t.Fatalf("cached nest-index: %v", err)
	}
	if len(idx) != len(p.Nests) {
		t.Fatalf("gen %d: nest-index has %d entries, program has %d nests",
			m.am.Generation(), len(idx), len(p.Nests))
	}
	for i, n := range p.Nests {
		if idx[n.Label] != i {
			t.Fatalf("gen %d: nest-index[%s]=%d, want %d", m.am.Generation(), n.Label, idx[n.Label], i)
		}
	}

	for ni := range p.Nests {
		for _, arr := range p.Arrays {
			got := m.am.ReuseClass(ni, arr.Name)
			want := liveness.Classify(p, ni, arr.Name)
			if got.Kind != want.Kind || got.CarryVar != want.CarryVar {
				t.Fatalf("gen %d: cached class(%d,%s)={%v,%s}, fresh={%v,%s}",
					m.am.Generation(), ni, arr.Name, got.Kind, got.CarryVar, want.Kind, want.CarryVar)
			}
		}
	}
}

// analysisCount tallies whole-program analysis executions
// (deps.Analyze + liveness.Analyze) separately from the cheap
// per-(nest,array) liveness.Classify queries.
type analysisCount struct {
	deps, live, classify int
}

func (c analysisCount) whole() int { return c.deps + c.live }

// oldWorldAnalysisCount replays the pre-manager pipeline's analysis
// call pattern on p and returns how many analysis executions it
// performed:
//
//   - fuse ran two dependence analyses for its single step
//     (fusion.FuseGreedily built the graph, then Apply rebuilt it);
//   - reduce-storage ran liveness once per fixpoint scan, classified
//     every filtered candidate, and ContractArray/ShrinkArray each
//     re-classified internally;
//   - store-elim called EliminateStores per candidate, which
//     classified unconditionally and ran a full liveness analysis
//     whenever the class passed its kind check.
//
// Graph builds are not counted in either world, so the comparison
// against the manager's miss counters is apples-to-apples.
func oldWorldAnalysisCount(t *testing.T, p *ir.Program) analysisCount {
	t.Helper()
	var count analysisCount
	cur := p.Clone()
	count.deps += 2
	if fused, _, err := fusion.FuseGreedily(cur); err == nil {
		cur = fused
	}
	for changed := true; changed; {
		changed = false
		count.live++ // per-scan liveness.Analyze
		live, err := liveness.Analyze(cur)
		if err != nil {
			t.Fatal(err)
		}
		for ni := range cur.Nests {
			for _, arr := range append([]*ir.Array(nil), cur.Arrays...) {
				name := arr.Name
				if live.LiveAfter(name, ni) || !usedOnlyIn(cur, ni, name) {
					continue
				}
				count.classify++ // candidate Classify
				switch liveness.Classify(cur, ni, name).Kind {
				case liveness.ScalarLike:
					count.classify++ // ContractArray's internal Classify
					if next, err := ContractArray(cur, ni, name); err == nil {
						cur, changed = next, true
					}
				case liveness.CarryOne:
					count.classify++ // ShrinkArray's internal Classify
					if next, err := ShrinkArray(cur, ni, name); err == nil {
						cur, changed = next, true
					}
				}
				if changed {
					break
				}
			}
			if changed {
				break
			}
		}
	}
	for changed := true; changed; {
		changed = false
		for ni := range cur.Nests {
			for _, arr := range append([]*ir.Array(nil), cur.Arrays...) {
				name := arr.Name
				count.classify++ // EliminateStores' Classify
				cl := liveness.Classify(cur, ni, name)
				if cl.Kind != liveness.ForwardOnly && cl.Kind != liveness.ScalarLike {
					continue
				}
				count.live++ // EliminateStores' liveness.Analyze
				if next, err := EliminateStores(cur, ni, name); err == nil {
					cur, changed = next, true
				}
				if changed {
					break
				}
			}
			if changed {
				break
			}
		}
	}
	return count
}

// TestAnalysisCacheHalvesAnalyses is the acceptance criterion's counter
// test: on the paper kernels, the default pipeline under the analysis
// manager must execute at most half the deps.Analyze/liveness.Analyze
// runs the pre-manager pipeline did for the same optimization. The
// per-(nest,array) classifications are compared informationally: each
// distinct key must be computed at least once in either world, so they
// cannot shrink by a fixed factor on small kernels.
func TestAnalysisCacheHalvesAnalyses(t *testing.T) {
	for name, p := range paperKernels(t) {
		_, out, err := OptimizeVerified(p, Config{Options: All()})
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		got := analysisCount{
			deps:     int(out.Analysis[analysis.DepsName].Misses),
			live:     int(out.Analysis[analysis.LivenessName].Misses),
			classify: int(out.Analysis[analysis.ReuseClassesName].Misses),
		}
		if got.whole() == 0 {
			t.Fatalf("%s: no analyses computed through the manager (stats: %+v)", name, out.Analysis)
		}
		old := oldWorldAnalysisCount(t, p)
		t.Logf("%s: deps+liveness executions %d -> %d (%.1fx fewer), classifications %d -> %d",
			name, old.whole(), got.whole(), float64(old.whole())/float64(got.whole()),
			old.classify, got.classify)
		if got.whole()*2 > old.whole() {
			t.Errorf("%s: manager ran %d deps+liveness analyses vs %d pre-manager — less than the required 2x reduction (stats: %+v)",
				name, got.whole(), old.whole(), out.Analysis)
		}
		if got.classify > old.classify {
			t.Errorf("%s: manager classified more than the pre-manager pipeline (%d > %d)",
				name, got.classify, old.classify)
		}
	}
}

// TestStoreElimLivenessOncePerVersion pins the satellite requirement:
// store elimination runs liveness once per program version, not once
// per candidate array. With K candidate arrays and no commits, the
// pre-manager code ran K analyses; the pass must now run exactly one.
func TestStoreElimLivenessOncePerVersion(t *testing.T) {
	// Three arrays, each written then read in a later nest, so store
	// elimination finds no eliminable writeback (every array is live
	// after its writing nest) and commits nothing — one scan, one
	// program version.
	src := `program manycand
const N = 32
array a[N]
array b[N]
array c[N]
scalar s
loop W {
  for i = 0, N - 1 {
    a[i] = i
    b[i] = i + 1
    c[i] = i + 2
  }
}
loop R {
  s = 0
  for i = 0, N - 1 {
    s = s + a[i] + b[i] + c[i]
  }
  print s
}
`
	p := lang.MustParse(src)
	_, out, err := OptimizeVerified(p, Config{Pipeline: "store-elim"})
	if err != nil {
		t.Fatal(err)
	}
	if out.Checkpoints != 0 {
		t.Fatalf("expected no commits, got %d", out.Checkpoints)
	}
	st := out.Analysis[analysis.LivenessName]
	if st.Misses != 1 {
		t.Fatalf("store-elim computed liveness %d times for one program version, want 1 (stats: %+v)",
			st.Misses, st)
	}
	if rc := out.Analysis[analysis.ReuseClassesName]; rc.Requests == 0 {
		t.Fatalf("store-elim never consulted reuse classes: %+v", out.Analysis)
	}
}

// TestOptimizeUncachedIdentical checks the NoAnalysisCache escape
// hatch: disabling memoization must not change the optimizer's output
// or action log on the paper kernels.
func TestOptimizeUncachedIdentical(t *testing.T) {
	for name, p := range paperKernels(t) {
		q1, out1, err := OptimizeVerified(p, Config{Options: All()})
		if err != nil {
			t.Fatalf("%s cached: %v", name, err)
		}
		q2, out2, err := OptimizeVerified(p, Config{Options: All(), NoAnalysisCache: true})
		if err != nil {
			t.Fatalf("%s uncached: %v", name, err)
		}
		if q1.String() != q2.String() {
			t.Fatalf("%s: cached and uncached programs differ:\n%s\n---\n%s", name, q1, q2)
		}
		if fmt.Sprint(out1.Actions) != fmt.Sprint(out2.Actions) {
			t.Fatalf("%s: action logs differ:\n%v\n%v", name, out1.Actions, out2.Actions)
		}
		st := out2.Analysis.Total()
		if st.Hits != 0 {
			t.Fatalf("%s: uncached run recorded %d cache hits", name, st.Hits)
		}
	}
}
