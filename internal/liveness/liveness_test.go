package liveness

import (
	"strings"
	"testing"

	"repro/internal/ir"
	"repro/internal/lang"
)

func analyze(t *testing.T, src string) *Info {
	t.Helper()
	p, err := lang.Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	inf, err := Analyze(p)
	if err != nil {
		t.Fatal(err)
	}
	return inf
}

const threeNestSrc = `
program t
const N = 8
array a[N]
array b[N]
scalar s
loop L1 { for i = 0, N-1 { a[i] = i } }
loop L2 { for i = 0, N-1 { b[i] = a[i] } }
loop L3 { for i = 0, N-1 { s = s + b[i] } }
`

func TestArrayLifeRanges(t *testing.T) {
	inf := analyze(t, threeNestSrc)
	a := inf.Arrays["a"]
	if a.FirstWrite != 0 || a.LastWrite != 0 || a.FirstRead != 1 || a.LastRead != 1 {
		t.Fatalf("a life = %+v", a)
	}
	b := inf.Arrays["b"]
	if b.FirstWrite != 1 || b.LastRead != 2 {
		t.Fatalf("b life = %+v", b)
	}
}

func TestLiveAfter(t *testing.T) {
	inf := analyze(t, threeNestSrc)
	if !inf.LiveAfter("a", 0) {
		t.Fatal("a is read in L2, live after L1")
	}
	if inf.LiveAfter("a", 1) {
		t.Fatal("a dead after L2")
	}
	if !inf.LiveAfter("b", 1) || inf.LiveAfter("b", 2) {
		t.Fatal("b liveness wrong")
	}
	if inf.LiveAfter("ghost", 0) {
		t.Fatal("unknown array must not be live")
	}
}

func TestLiveBefore(t *testing.T) {
	inf := analyze(t, threeNestSrc)
	if inf.LiveBefore("a", 0) {
		t.Fatal("a has no values before L1")
	}
	if !inf.LiveBefore("a", 1) {
		t.Fatal("a carries values into L2")
	}
}

func TestCollectUsesOrderAndKinds(t *testing.T) {
	p := lang.MustParse(`
program t
const N = 8
array a[N]
scalar s
loop L1 {
  for i = 0, N-1 {
    a[i] = a[i] + 1
    s = s + a[i]
  }
}
`)
	uses := CollectUses(p, p.Nests[0], "a")
	if len(uses) != 3 {
		t.Fatalf("uses = %d, want 3", len(uses))
	}
	// RHS read precedes the write; the sum read follows it.
	if uses[0].Write || !uses[1].Write || uses[2].Write {
		t.Fatalf("kinds wrong: %+v", uses)
	}
	if !(uses[0].Order < uses[1].Order && uses[1].Order < uses[2].Order) {
		t.Fatal("order wrong")
	}
	if len(uses[0].Loops) != 1 || uses[0].Loops[0].Var != "i" {
		t.Fatal("loop context wrong")
	}
}

func TestCollectUsesGuards(t *testing.T) {
	p := lang.MustParse(`
program t
const N = 8
array a[N]
array b[N]
loop L1 {
  for i = 0, N-1 {
    if i >= 1 {
      b[i] = a[i-1]
    } else {
      b[i] = 0
    }
  }
}
`)
	uses := CollectUses(p, p.Nests[0], "a")
	if len(uses) != 1 {
		t.Fatalf("uses = %d", len(uses))
	}
	g := uses[0].Guards
	if len(g) != 1 || g[0].Var != "i" || !g[0].ImpliesGE("i", 1) {
		t.Fatalf("guards = %+v", g)
	}
}

func TestGuardNegation(t *testing.T) {
	p := lang.MustParse(`
program t
const N = 8
array a[N]
array b[N]
loop L1 {
  for i = 0, N-1 {
    if i < 1 {
      b[i] = 0
    } else {
      b[i] = a[i-1]
    }
  }
}
`)
	uses := CollectUses(p, p.Nests[0], "a")
	if len(uses) != 1 || !uses[0].Guards[0].ImpliesGE("i", 1) {
		t.Fatalf("negated guard missing: %+v", uses)
	}
}

func TestImpliesGE(t *testing.T) {
	gGe := Guard{Var: "i", Op: ir.Ge, C: 3}
	if !gGe.ImpliesGE("i", 3) || !gGe.ImpliesGE("i", 2) || gGe.ImpliesGE("i", 4) {
		t.Fatal("Ge guard implication wrong")
	}
	gGt := Guard{Var: "i", Op: ir.Gt, C: 3}
	if !gGt.ImpliesGE("i", 4) || gGt.ImpliesGE("i", 5) {
		t.Fatal("Gt guard implication wrong")
	}
	gEq := Guard{Var: "i", Op: ir.Eq, C: 5}
	if !gEq.ImpliesGE("i", 5) || gEq.ImpliesGE("i", 6) {
		t.Fatal("Eq guard implication wrong")
	}
	gLt := Guard{Var: "i", Op: ir.Lt, C: 5}
	if gLt.ImpliesGE("i", 1) {
		t.Fatal("Lt guard must not imply a lower bound")
	}
	if gGe.ImpliesGE("j", 1) {
		t.Fatal("guard variable mismatch ignored")
	}
}

func TestClassifyScalarLike(t *testing.T) {
	p := lang.MustParse(`
program t
const N = 8
array tmp[N]
array a[N]
array b[N]
scalar s
loop L1 {
  for i = 0, N-1 {
    tmp[i] = a[i] * 2
    b[i] = tmp[i] + 1
  }
}
`)
	c := Classify(p, 0, "tmp")
	if c.Kind != ScalarLike {
		t.Fatalf("kind = %s (%s)", c.Kind, c.Reason)
	}
}

func TestClassifyForwardOnly(t *testing.T) {
	// Figure 7's fused shape: res[i] = res[i]+data[i]; sum += res[i].
	p := lang.MustParse(`
program t
const N = 8
array res[N]
array data[N]
scalar sum
loop L1 {
  for i = 0, N-1 {
    res[i] = res[i] + data[i]
    sum = sum + res[i]
  }
}
`)
	c := Classify(p, 0, "res")
	if c.Kind != ForwardOnly {
		t.Fatalf("kind = %s (%s)", c.Kind, c.Reason)
	}
}

func TestClassifyCarryOneGuarded(t *testing.T) {
	p := lang.MustParse(`
program t
const N = 8
array tmp[N]
array a[N]
array b[N]
loop L1 {
  for i = 0, N-1 {
    tmp[i] = a[i] * 2
    if i >= 1 {
      b[i] = tmp[i] + tmp[i-1]
    } else {
      b[i] = tmp[i]
    }
  }
}
`)
	c := Classify(p, 0, "tmp")
	if c.Kind != CarryOne {
		t.Fatalf("kind = %s (%s)", c.Kind, c.Reason)
	}
	if c.CarryVar != "i" || c.CarryLevel != 0 {
		t.Fatalf("carry = %s@%d", c.CarryVar, c.CarryLevel)
	}
}

func TestClassifyCarryUnguardedRejected(t *testing.T) {
	// The i-1 read at i=0 would reference an element this nest never
	// wrote; without a guard the transformation is unsafe.
	p := lang.MustParse(`
program t
const N = 8
array tmp[N]
array a[N]
array b[N]
loop L1 {
  for i = 1, N-1 {
    tmp[i] = a[i] * 2
    b[i] = tmp[i] + tmp[i-1]
  }
}
`)
	c := Classify(p, 0, "tmp")
	if c.Kind != Unknown || !strings.Contains(c.Reason, "guard") {
		t.Fatalf("kind = %s (%s)", c.Kind, c.Reason)
	}
}

func TestClassifyTwoDimCarry(t *testing.T) {
	// Figure 6 shape (simplified): a[i,j] produced, a[i,j-1] consumed,
	// guarded against the first column.
	p := lang.MustParse(`
program t
const N = 8
array a[N,N]
array b[N,N]
loop L1 {
  for j = 0, N-1 {
    for i = 0, N-1 {
      read a[i,j]
      if j >= 1 {
        b[i,j] = f(a[i,j-1], a[i,j])
      } else {
        b[i,j] = a[i,j]
      }
    }
  }
}
`)
	c := Classify(p, 0, "a")
	if c.Kind != CarryOne {
		t.Fatalf("kind = %s (%s)", c.Kind, c.Reason)
	}
	if c.CarryVar != "j" || c.CarryLevel != 0 {
		t.Fatalf("carry = %s@%d", c.CarryVar, c.CarryLevel)
	}
}

func TestClassifyReadOnlyRejected(t *testing.T) {
	p := lang.MustParse(`
program t
const N = 8
array a[N]
scalar s
loop L1 { for i = 0, N-1 { s = s + a[i] } }
`)
	c := Classify(p, 0, "a")
	if c.Kind != Unknown || !strings.Contains(c.Reason, "never written") {
		t.Fatalf("%s (%s)", c.Kind, c.Reason)
	}
}

func TestClassifyMultipleWriteIndicesRejected(t *testing.T) {
	p := lang.MustParse(`
program t
const N = 8
array a[N]
loop L1 {
  for i = 0, N-2 {
    a[i] = 1
    a[i+1] = 2
  }
}
`)
	c := Classify(p, 0, "a")
	if c.Kind != Unknown {
		t.Fatalf("kind = %s", c.Kind)
	}
}

func TestClassifyIdenticalWritesInBranches(t *testing.T) {
	// Two writes with the same subscript in different branches are fine.
	p := lang.MustParse(`
program t
const N = 8
array a[N]
array b[N]
scalar s
loop L1 {
  for i = 0, N-1 {
    if b[i] > 0 { a[i] = 1 } else { a[i] = 2 }
    s = s + a[i]
  }
}
`)
	c := Classify(p, 0, "a")
	if c.Kind != ScalarLike {
		t.Fatalf("kind = %s (%s)", c.Kind, c.Reason)
	}
}

func TestClassifyLargeDistanceRejected(t *testing.T) {
	p := lang.MustParse(`
program t
const N = 8
array a[N]
array b[N]
loop L1 {
  for i = 0, N-1 {
    a[i] = 1
    if i >= 2 { b[i] = a[i-2] }
  }
}
`)
	if c := Classify(p, 0, "a"); c.Kind != Unknown {
		t.Fatalf("distance-2 carry must be rejected, got %s", c.Kind)
	}
}

func TestClassifyUnusedArray(t *testing.T) {
	p := lang.MustParse(`
program t
array a[4]
array b[4]
loop L1 { b[0] = 1 }
`)
	if c := Classify(p, 0, "a"); c.Kind != Unknown || !strings.Contains(c.Reason, "not used") {
		t.Fatalf("%+v", c)
	}
}
