// Miss-ratio curves by one-pass reuse-distance (stack-distance)
// analysis, after Mattson et al. (IBM Systems Journal, 1970).
//
// The fixed-capacity simulator in sim.go answers "how many misses at
// THIS cache size"; the recorder here answers the same question for
// every size at once. It rides the same access stream: each cache
// level's line-granular accesses (exactly the calls that bump that
// level's Stats counters) also update a per-set order-statistic
// structure, and the per-set stack distance — the number of distinct
// other lines of the same set touched since the line's previous
// access — decides hit or miss for every associativity simultaneously.
// A set-associative LRU cache with S sets and A ways hits if and only
// if the per-set distance is below A, so a histogram of distances
// yields the exact miss count for capacity A·S·line for all A ≥ 1
// (LRU's inclusion property, per set). Holding the set count and line
// size at the machine's configured geometry keeps the curve exact at
// the machine's own capacity: evaluating at A = cfg.Assoc must
// reproduce the fixed simulation's counters bit for bit, which is the
// correctness oracle the tests enforce.
//
// Because level i+1 observes the miss-and-writeback stream that the
// fixed-geometry level i actually produced, per-level curves compose
// through the hierarchy: each level's curve is conditioned on the
// levels above it staying at their configured geometry.
//
// Writeback counts sweep capacity too. A line's residency period at
// associativity A ends at the first reuse gap with distance ≥ A, and
// the period's eviction writes back iff a write occurred in it. For a
// reuse gap of distance D, with M the largest gap since the line's
// last write, the eviction-writeback happens exactly for A in (M, D]
// — a range update on a difference array over the associativity axis.
// Program-end Flush writebacks are the open range (M, ∞).
//
// The recorder also buckets the processor access stream into epochs
// (per-epoch per-site traffic, flops, memory bytes, and exact
// distinct-line working sets) to expose program phases that aggregate
// totals hide.
package sim

import (
	"fmt"
	"sort"
)

// fenwick is a 1-indexed binary indexed tree over per-set time slots;
// a set bit marks the most recent access slot of one live line.
type fenwick []int64

func (f fenwick) add(i, v int64) {
	for ; i < int64(len(f)); i += i & (-i) {
		f[i] += v
	}
}

func (f fenwick) sum(i int64) int64 {
	var s int64
	for ; i > 0; i -= i & (-i) {
		s += f[i]
	}
	return s
}

// mrcLine is the per-line state of the reuse-distance analysis.
type mrcLine struct {
	slot int64 // current Fenwick slot (per-set recency timestamp)
	// Dirty-interval tracking for capacity-swept writebacks: wOwner
	// holds the site of the last write, wMax the largest reuse gap
	// since that write. The line is dirty at associativity A iff
	// hasW and A > wMax.
	wMax   int64
	wOwner uint32
	hasW   bool
}

// mrcSet is the order-statistic structure of one cache set: a Fenwick
// tree over per-set access time with periodic compaction, giving
// O(log live-lines) stack distances.
type mrcSet struct {
	fen   fenwick
	lines map[int64]*mrcLine
	clock int64 // last assigned slot
}

func newMrcSet() *mrcSet {
	return &mrcSet{fen: make(fenwick, 64), lines: make(map[int64]*mrcLine)}
}

// touch records an access to tag and returns its per-set stack
// distance (-1 for a cold first touch) and the line's state.
func (s *mrcSet) touch(tag int64) (int64, *mrcLine) {
	d := int64(-1)
	ln := s.lines[tag]
	if ln != nil {
		// Lines more recent than ln = live lines minus those at or
		// before ln's slot.
		d = int64(len(s.lines)) - s.fen.sum(ln.slot)
		s.fen.add(ln.slot, -1)
		ln.slot = 0
	}
	if s.clock+1 >= int64(len(s.fen)) {
		s.compact()
	}
	s.clock++
	if ln == nil {
		ln = &mrcLine{}
		s.lines[tag] = ln
	}
	ln.slot = s.clock
	s.fen.add(ln.slot, 1)
	return d, ln
}

// compact reassigns slots 1..live in recency order when the time axis
// fills, keeping the Fenwick proportional to live lines. Amortized
// O(log) per access: at least half the capacity is consumed between
// rebuilds.
func (s *mrcSet) compact() {
	all := make([]*mrcLine, 0, len(s.lines))
	for _, ln := range s.lines {
		if ln.slot > 0 {
			all = append(all, ln)
		}
	}
	sort.Slice(all, func(i, j int) bool { return all[i].slot < all[j].slot })
	capa := int64(64)
	for capa < 2*int64(len(all))+2 {
		capa *= 2
	}
	s.fen = make(fenwick, capa)
	for i, ln := range all {
		ln.slot = int64(i + 1)
		s.fen.add(ln.slot, 1)
	}
	s.clock = int64(len(all))
}

// mrcHist accumulates the capacity-swept counters of one site (or of
// a whole level): reuse-distance histograms split by read/write, cold
// first-touches, and the writeback difference array over the
// associativity axis.
type mrcHist struct {
	reads, writes int64
	coldR, coldW  int64
	distR, distW  []int64
	// wbDiff[a] added for thresholds ≥ a: writebacks(A) = Σ_{a≤A} wbDiff[a].
	// Closed eviction ranges (M, D] add +1 at M+1 and -1 at D+1; open
	// Flush ranges (M, ∞) add only the +1.
	wbDiff []int64
}

func bump(s *[]int64, i int64) {
	grow(s, i)
	(*s)[i]++
}

func (h *mrcHist) record(d int64, write bool) {
	if write {
		h.writes++
		if d < 0 {
			h.coldW++
		} else {
			bump(&h.distW, d)
		}
	} else {
		h.reads++
		if d < 0 {
			h.coldR++
		} else {
			bump(&h.distR, d)
		}
	}
}

func grow(s *[]int64, i int64) {
	for int64(len(*s)) <= i {
		*s = append(*s, 0)
	}
}

// addWbRange adds one writeback for associativity thresholds in
// [lo, hi); hi < 0 leaves the range open (program-end flush).
func (h *mrcHist) addWbRange(lo, hi int64) {
	grow(&h.wbDiff, lo)
	h.wbDiff[lo]++
	if hi >= 0 {
		grow(&h.wbDiff, hi)
		h.wbDiff[hi]--
	}
}

// maxDist returns the largest recorded reuse distance plus one — the
// associativity at which only compulsory misses remain.
func (h *mrcHist) maxDist() int64 {
	m := int64(len(h.distR))
	if int64(len(h.distW)) > m {
		m = int64(len(h.distW))
	}
	if int64(len(h.wbDiff))-1 > m {
		m = int64(len(h.wbDiff)) - 1
	}
	return m
}

// eval produces the exact Stats of a cache with the level's set count
// and line size and `assoc` ways, for write-back or write-through
// (write-allocate) policies.
func (h *mrcHist) eval(assoc int64, ls int64, policy WritePolicy) Stats {
	var rm, wm int64
	for d := assoc; d < int64(len(h.distR)); d++ {
		rm += h.distR[d]
	}
	for d := assoc; d < int64(len(h.distW)); d++ {
		wm += h.distW[d]
	}
	rm += h.coldR
	wm += h.coldW
	st := Stats{
		Reads: h.reads, Writes: h.writes,
		ReadMisses: rm, WriteMisses: wm,
		BytesIn: (rm + wm) * ls,
	}
	if policy == WriteThrough {
		st.BytesOut = h.writes * ls
		return st
	}
	var wb int64
	for a := int64(0); a <= assoc && a < int64(len(h.wbDiff)); a++ {
		wb += h.wbDiff[a]
	}
	st.Writebacks = wb
	st.BytesOut = wb * ls
	return st
}

// mrcLevel holds the reuse-distance state of one cache level.
type mrcLevel struct {
	cfg   CacheConfig
	ls    int64
	nsets int64
	sets  map[int64]*mrcSet
	total mrcHist
	sites map[uint32]*mrcHist
}

func (l *mrcLevel) site(id uint32) *mrcHist {
	h := l.sites[id]
	if h == nil {
		h = &mrcHist{}
		l.sites[id] = h
	}
	return h
}

func (l *mrcLevel) record(tag int64, write bool, site uint32) {
	si := tag % l.nsets
	set := l.sets[si]
	if set == nil {
		set = newMrcSet()
		l.sets[si] = set
	}
	d, ln := set.touch(tag)
	l.total.record(d, write)
	sh := l.site(site)
	sh.record(d, write)
	if l.cfg.Policy != WriteBack {
		return
	}
	// Eviction writeback: for associativities in (wMax, d] the line
	// was evicted dirty before this access.
	if ln.hasW && d > ln.wMax {
		l.total.addWbRange(ln.wMax+1, d+1)
		l.site(ln.wOwner).addWbRange(ln.wMax+1, d+1)
	}
	if write {
		ln.hasW, ln.wOwner, ln.wMax = true, site, 0
	} else if ln.hasW && d > ln.wMax {
		ln.wMax = d
	}
}

// finalize applies the program-end Flush writebacks: every line with
// a write since its last eviction-at-A writes back for all A > wMax.
func (l *mrcLevel) finalize() {
	if l.cfg.Policy != WriteBack {
		return
	}
	for _, set := range l.sets {
		for _, ln := range set.lines {
			if ln.hasW {
				l.total.addWbRange(ln.wMax+1, -1)
				l.site(ln.wOwner).addWbRange(ln.wMax+1, -1)
				ln.hasW = false
			}
		}
	}
}

// mrcEpochs buckets the processor access stream into up to maxEpochs
// fixed-width windows, doubling the width (merging bucket pairs) as
// the stream grows. Distinct-line working sets stay exact under
// merging because each line access records the absolute index of its
// previous access: a line is distinct within a window iff its
// previous access predates the window start.
const maxEpochs = 512

type mrcEpochs struct {
	width   int64 // processor accesses per bucket (power-of-two growth)
	n       int   // buckets in use
	idx     int64 // processor access counter
	cur     int   // bucket of the access being processed
	procB   []int64
	flops   []int64
	memB    []int64
	cold    []int64            // first-ever line touches per bucket
	reuse   [][]int64          // reuse[b][p]: re-touches in b with previous access in bucket p
	memSite []map[uint32]int64 // per-bucket per-site memory bytes (owner-pays)
	lastIdx map[int64]int64    // line tag (memory-side granularity) -> last access index
	memLS   int64              // line size of the memory-facing level
}

func newMrcEpochs(memLS int64) *mrcEpochs {
	return &mrcEpochs{width: 16, memLS: memLS, lastIdx: make(map[int64]int64)}
}

func (t *mrcEpochs) bucket() int {
	b := int(t.idx / t.width)
	if b >= maxEpochs {
		t.halve()
		b = int(t.idx / t.width)
	}
	for t.n <= b {
		t.procB = append(t.procB, 0)
		t.flops = append(t.flops, 0)
		t.memB = append(t.memB, 0)
		t.cold = append(t.cold, 0)
		t.reuse = append(t.reuse, make([]int64, t.n+1))
		t.memSite = append(t.memSite, nil)
		t.n++
	}
	return b
}

// halve doubles the bucket width by merging adjacent pairs. All
// per-bucket counters are additive; reuse[][] merges with both
// indices halved, which is exact because widths only ever double.
func (t *mrcEpochs) halve() {
	t.width *= 2
	half := (t.n + 1) / 2
	for i := 0; i < half; i++ {
		a, b := 2*i, 2*i+1
		t.procB[i] = t.procB[a]
		t.flops[i] = t.flops[a]
		t.memB[i] = t.memB[a]
		t.cold[i] = t.cold[a]
		nr := make([]int64, i+1)
		for p, v := range t.reuse[a] {
			nr[p/2] += v
		}
		ms := t.memSite[a]
		if b < t.n {
			t.procB[i] += t.procB[b]
			t.flops[i] += t.flops[b]
			t.memB[i] += t.memB[b]
			t.cold[i] += t.cold[b]
			for p, v := range t.reuse[b] {
				nr[p/2] += v
			}
			if t.memSite[b] != nil {
				if ms == nil {
					ms = t.memSite[b]
				} else {
					for k, v := range t.memSite[b] {
						ms[k] += v
					}
				}
			}
		}
		t.reuse[i] = nr
		t.memSite[i] = ms
	}
	t.procB = t.procB[:half]
	t.flops = t.flops[:half]
	t.memB = t.memB[:half]
	t.cold = t.cold[:half]
	t.reuse = t.reuse[:half]
	t.memSite = t.memSite[:half]
	t.n = half
}

// tick records one processor access spanning [addr, addr+size) at the
// memory-facing line granularity.
func (t *mrcEpochs) tick(addr int64, size int) {
	b := t.bucket()
	t.cur = b
	t.procB[b] += int64(size)
	first := addr &^ (t.memLS - 1)
	last := (addr + int64(size) - 1) &^ (t.memLS - 1)
	for a := first; a <= last; a += t.memLS {
		tag := a / t.memLS
		if prev, ok := t.lastIdx[tag]; ok {
			p := int(prev / t.width)
			t.reuse[b][p]++
		} else {
			t.cold[b]++
		}
		t.lastIdx[tag] = t.idx
	}
	t.idx++
}

func (t *mrcEpochs) addFlops(n int64) {
	if t.n == 0 {
		t.bucket()
		t.cur = 0
	}
	t.flops[t.cur] += n
}

func (t *mrcEpochs) mem(site uint32) {
	if t.n == 0 {
		t.bucket()
		t.cur = 0
	}
	t.memB[t.cur] += t.memLS
	ms := t.memSite[t.cur]
	if ms == nil {
		ms = make(map[uint32]int64)
		t.memSite[t.cur] = ms
	}
	ms[site] += t.memLS
}

// Epoch is one window of the phase timeline.
type Epoch struct {
	Index     int
	StartStep int64 // first processor access index of the window
	Steps     int64 // processor accesses in the window
	ProcBytes int64 // register-channel bytes
	MemBytes  int64 // memory-channel bytes (fills + writebacks)
	Flops     int64
	WSLines   int64 // distinct memory-granularity lines touched in the window
	NewLines  int64 // lines touched for the first time ever in the window
	// MemBySite attributes the window's memory bytes to the site that
	// caused them (writebacks owner-pays, as in the fixed simulator).
	MemBySite map[uint32]int64
}

// WSBytes is the window's working set in bytes.
func (e Epoch) WSBytes(lineSize int64) int64 { return e.WSLines * lineSize }

// epochs aggregates the fine buckets into at most n windows, exactly.
func (t *mrcEpochs) epochs(n int) []Epoch {
	if t.n == 0 || n <= 0 {
		return nil
	}
	if n > t.n {
		n = t.n
	}
	out := make([]Epoch, 0, n)
	for g := 0; g < n; g++ {
		s := g * t.n / n
		e := (g + 1) * t.n / n
		ep := Epoch{Index: g, StartStep: int64(s) * t.width, Steps: int64(e-s) * t.width}
		if e == t.n { // last window: clip to the actual stream length
			ep.Steps = t.idx - ep.StartStep
		}
		for b := s; b < e; b++ {
			ep.ProcBytes += t.procB[b]
			ep.Flops += t.flops[b]
			ep.MemBytes += t.memB[b]
			ep.NewLines += t.cold[b]
			ep.WSLines += t.cold[b]
			for p, v := range t.reuse[b] {
				if p < s {
					ep.WSLines += v
				}
			}
			for k, v := range t.memSite[b] {
				if ep.MemBySite == nil {
					ep.MemBySite = make(map[uint32]int64)
				}
				ep.MemBySite[k] += v
			}
		}
		out = append(out, ep)
	}
	return out
}

// MRCRecorder carries the one-pass reuse-distance state of a whole
// hierarchy. It is created by Hierarchy.EnableMRC and fed by the same
// access stream that drives the fixed-capacity counters.
type MRCRecorder struct {
	levels    []*mrcLevel
	epochs    *mrcEpochs
	finalized bool
}

// EnableMRC attaches a reuse-distance recorder to the hierarchy. It
// must be called before the first access. Levels with
// NoWriteAllocate are rejected: a write miss that bypasses the cache
// does not update recency, so whether it installs depends on the
// capacity under study and the one-pass stack property breaks.
func (h *Hierarchy) EnableMRC() error {
	r := &MRCRecorder{}
	for _, l := range h.levels {
		if l.cfg.NoWriteAllocate {
			return fmt.Errorf("sim: mrc: level %s uses no-write-allocate; reuse-distance analysis requires write-allocate", l.cfg.Name)
		}
		r.levels = append(r.levels, &mrcLevel{
			cfg:   l.cfg,
			ls:    int64(l.cfg.LineSize),
			nsets: l.nsets,
			sets:  make(map[int64]*mrcSet),
			sites: make(map[uint32]*mrcHist),
		})
	}
	r.epochs = newMrcEpochs(int64(h.levels[len(h.levels)-1].cfg.LineSize))
	h.mrc = r
	return nil
}

// MRC returns the attached recorder, or nil when recording is off.
func (h *Hierarchy) MRC() *MRCRecorder { return h.mrc }

// record is the per-level hook called from Hierarchy.access for every
// line-granular access a cache level observes.
func (r *MRCRecorder) record(lvl int, tag int64, write bool, site uint32) {
	r.levels[lvl].record(tag, write, site)
}

// finalize applies program-end Flush writebacks; idempotent.
func (r *MRCRecorder) finalize() {
	if r.finalized {
		return
	}
	r.finalized = true
	for _, l := range r.levels {
		l.finalize()
	}
}

// Levels returns the number of recorded cache levels.
func (r *MRCRecorder) Levels() int { return len(r.levels) }

// LevelConfig returns the geometry the level's curve is swept around.
func (r *MRCRecorder) LevelConfig(i int) CacheConfig { return r.levels[i].cfg }

// Sets returns the number of sets of level i (fixed along the curve).
func (r *MRCRecorder) Sets(i int) int64 { return r.levels[i].nsets }

// MaxAssoc returns the smallest associativity of level i at which
// only compulsory misses (and final-flush writebacks) remain; the
// curve is flat at and beyond MaxAssoc.
func (r *MRCRecorder) MaxAssoc(i int) int64 {
	m := r.levels[i].total.maxDist()
	if m < 1 {
		return 1
	}
	return m
}

// Eval returns the exact Stats of level i rebuilt as a cache with the
// recorded set count and line size and the given associativity,
// including program-end flush writebacks. Evaluating at the
// configured associativity reproduces the fixed simulation exactly.
func (r *MRCRecorder) Eval(i int, assoc int64) Stats {
	r.finalize()
	l := r.levels[i]
	return l.total.eval(assoc, l.ls, l.cfg.Policy)
}

// EvalCapacity is Eval with a byte capacity; the capacity must be a
// positive multiple of sets×line.
func (r *MRCRecorder) EvalCapacity(i int, capacity int64) (Stats, error) {
	l := r.levels[i]
	unit := l.nsets * l.ls
	if capacity <= 0 || capacity%unit != 0 {
		return Stats{}, fmt.Errorf("sim: mrc: capacity %d not a positive multiple of sets*line (%d) for %s", capacity, unit, l.cfg.Name)
	}
	return r.Eval(i, capacity/unit), nil
}

// Sites returns the site IDs observed at level i, ascending.
func (r *MRCRecorder) Sites(i int) []uint32 {
	out := make([]uint32, 0, len(r.levels[i].sites))
	for id := range r.levels[i].sites {
		out = append(out, id)
	}
	sort.Slice(out, func(a, b int) bool { return out[a] < out[b] })
	return out
}

// EvalSite returns the exact per-site Stats of level i at the given
// associativity (fills charged to the accessor, writebacks to the
// last dirtier, the fixed simulator's owner-pays policy). Per-site
// Stats sum to Eval's totals at every associativity.
func (r *MRCRecorder) EvalSite(i int, site uint32, assoc int64) Stats {
	r.finalize()
	l := r.levels[i]
	h := l.sites[site]
	if h == nil {
		return Stats{}
	}
	st := h.eval(assoc, l.ls, l.cfg.Policy)
	if l.cfg.Policy == WriteThrough {
		// Write-through BytesOut belongs to the writing site already.
		st.BytesOut = h.writes * l.ls
	}
	return st
}

// Epochs returns the phase timeline aggregated into at most n
// windows. Working-set counts are exact at any aggregation.
func (r *MRCRecorder) Epochs(n int) []Epoch { return r.epochs.epochs(n) }

// MemLineSize returns the line size (bytes) at the memory interface,
// the granularity of the timeline's working-set counts.
func (r *MRCRecorder) MemLineSize() int64 { return r.epochs.memLS }

// Accesses returns the number of processor accesses observed.
func (r *MRCRecorder) Accesses() int64 { return r.epochs.idx }
