package report

import (
	"strings"
	"testing"
)

func TestTableRendering(t *testing.T) {
	tab := &Table{
		Title:   "demo",
		Headers: []string{"name", "value"},
	}
	tab.AddRow("alpha", 1.5)
	tab.AddRow("b", "text")
	tab.AddRow("gamma", 42)
	tab.AddNote("a note with %d arg", 7)
	s := tab.String()
	for _, want := range []string{"demo", "====", "name", "value", "alpha", "1.50", "text", "42", "note: a note with 7 arg"} {
		if !strings.Contains(s, want) {
			t.Fatalf("missing %q in:\n%s", want, s)
		}
	}
	// Columns aligned: header row and first data row have the same
	// column start for "value".
	lines := strings.Split(s, "\n")
	var header, row string
	for i, l := range lines {
		if strings.HasPrefix(l, "name") {
			header = l
			row = lines[i+2]
		}
	}
	if strings.Index(header, "value") != strings.Index(row, "1.50") {
		t.Fatalf("columns misaligned:\n%s", s)
	}
}

func TestTableNoTitle(t *testing.T) {
	tab := &Table{Headers: []string{"x"}}
	tab.AddRow("y")
	if strings.Contains(tab.String(), "=") {
		t.Fatal("untitled table should have no title rule")
	}
}

func TestF(t *testing.T) {
	if F(1.23456, 2) != "1.23" || F(2, 0) != "2" {
		t.Fatal("F formatting wrong")
	}
}

func TestMBs(t *testing.T) {
	if MBs(312e6) != "312 MB/s" {
		t.Fatalf("got %q", MBs(312e6))
	}
}

func TestSeconds(t *testing.T) {
	cases := map[float64]string{
		2.5:     "2.50 s",
		0.0513:  "51.30 ms",
		0.00051: "510.00 us",
	}
	for in, want := range cases {
		if got := Seconds(in); got != want {
			t.Fatalf("Seconds(%v) = %q, want %q", in, got, want)
		}
	}
}

func TestBytes(t *testing.T) {
	cases := map[int64]string{
		512:           "512 B",
		2048:          "2.00 KiB",
		3 << 20:       "3.00 MiB",
		5 << 30:       "5.00 GiB",
		1<<20 + 1<<19: "1.50 MiB",
	}
	for in, want := range cases {
		if got := Bytes(in); got != want {
			t.Fatalf("Bytes(%d) = %q, want %q", in, got, want)
		}
	}
}

func TestAddRowMixedTypes(t *testing.T) {
	tab := &Table{Headers: []string{"a", "b", "c"}}
	tab.AddRow(int64(7), 3.14159, true)
	s := tab.String()
	if !strings.Contains(s, "7") || !strings.Contains(s, "3.14") || !strings.Contains(s, "true") {
		t.Fatalf("mixed row rendering wrong:\n%s", s)
	}
}

func TestRowWiderThanHeaders(t *testing.T) {
	tab := &Table{Headers: []string{"a"}}
	tab.AddRow("x", "overflow-cell")
	if !strings.Contains(tab.String(), "overflow-cell") {
		t.Fatal("extra cells dropped")
	}
}

func TestRegressionTable(t *testing.T) {
	empty := Regression(nil, []string{"environments differ"})
	s := empty.String()
	if !strings.Contains(s, "within threshold") || !strings.Contains(s, "environments differ") {
		t.Fatalf("empty regression table wrong:\n%s", s)
	}
	tab := Regression([]RegressionRow{{
		Kernel: "convolution", Metric: "optimize_ns",
		Baseline: "100.00 ms", Current: "130.00 ms",
		Change: "+30.0%", Threshold: "20%",
	}}, nil)
	s = tab.String()
	for _, want := range []string{"convolution", "optimize_ns", "+30.0%", "20%"} {
		if !strings.Contains(s, want) {
			t.Fatalf("missing %q in:\n%s", want, s)
		}
	}
}
