package main

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"math/rand"
	"os"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/client"
	"repro/internal/service"
)

// This file is bwbench's load-generator mode (-load): it drives a
// running bwserved through internal/client — retries, backoff,
// Retry-After and the circuit breaker included — and reports the
// latency distribution plus how often the server's overload machinery
// (shedding, coalescing, the degradation ladder) engaged. It is the
// measurement half of the chaos harness: CI starts bwserved with a
// fault spec, points bwbench -load at it, and asserts on the report.

// loadOpts carries the -load flag set.
type loadOpts struct {
	url      string
	duration time.Duration
	workers  int     // closed-loop concurrent workers
	rate     float64 // open-loop requests/sec (0 = closed loop)
	timeout  time.Duration
	chaos    string // per-request X-Chaos header value
	out      string // report path ("" = stdout only)
	quick    bool
}

// loadReport is the machine-readable outcome of one load run (the CI
// chaos job asserts on these fields).
type loadReport struct {
	Mode        string  `json:"mode"` // "closed-loop" or "open-loop"
	DurationSec float64 `json:"duration_sec"`
	Requests    int64   `json:"requests"`
	// OK counts calls that ended 200 (possibly after retries);
	// Shed counts calls whose final outcome was a 503;
	// BreakerRejected counts calls the client's open circuit breaker
	// failed fast without touching the network;
	// Failed counts every other terminal error.
	OK              int64 `json:"ok"`
	Shed            int64 `json:"shed"`
	BreakerRejected int64 `json:"breaker_rejected"`
	Failed          int64 `json:"failed"`
	// ServerErrors counts 5xx responses other than 503 Service
	// Unavailable and 504 Gateway Timeout seen on any attempt — the
	// statuses the resilience contract says must never happen.
	ServerErrors int64 `json:"server_errors"`
	// GatewayTimeouts counts 504 outcomes (deadline enforcement, a
	// legitimate terminal state under overload).
	GatewayTimeouts int64 `json:"gateway_timeouts"`

	Throughput float64            `json:"requests_per_sec"`
	LatencyMS  latencySummary     `json:"latency_ms"`
	StatusHist map[string]int64   `json:"status_counts"`
	RetriesSum int64              `json:"retries_total"`
	ShedsSeen  int64              `json:"sheds_seen_total"` // 503s across all attempts
	CacheHits  int64              `json:"cache_hits"`
	Coalesced  int64              `json:"coalesced"`
	Degraded   map[string]int64   `json:"degraded"` // by ladder-rung name
	ShedRate   float64            `json:"shed_rate"`
	CoalRate   float64            `json:"coalesce_rate"`
	Breaker    loadBreakerSummary `json:"breaker"`
}

type latencySummary struct {
	P50  float64 `json:"p50"`
	P95  float64 `json:"p95"`
	P99  float64 `json:"p99"`
	Mean float64 `json:"mean"`
	Max  float64 `json:"max"`
}

type loadBreakerSummary struct {
	State string `json:"state"`
	Opens int64  `json:"opens"`
}

// loadCollector accumulates per-call results across workers.
type loadCollector struct {
	mu        sync.Mutex
	latencies []time.Duration
	status    map[int]int64
	degraded  map[string]int64
	rep       loadReport
}

func (lc *loadCollector) record(meta client.Meta, err error, elapsed time.Duration) {
	lc.mu.Lock()
	defer lc.mu.Unlock()
	lc.rep.Requests++
	lc.latencies = append(lc.latencies, elapsed)
	if meta.Status != 0 {
		lc.status[meta.Status]++
	}
	if meta.Attempts > 1 {
		lc.rep.RetriesSum += int64(meta.Attempts - 1)
	}
	lc.rep.ShedsSeen += int64(meta.Sheds)
	switch {
	case err == nil:
		lc.rep.OK++
		if meta.Cached {
			lc.rep.CacheHits++
		}
		if meta.Coalesced {
			lc.rep.Coalesced++
		}
		if meta.Degraded != "" {
			lc.degraded[meta.Degraded]++
		}
	case errors.Is(err, client.ErrBreakerOpen):
		lc.rep.BreakerRejected++
	case meta.Status == 503:
		lc.rep.Shed++
	case meta.Status == 504:
		lc.rep.GatewayTimeouts++
	default:
		lc.rep.Failed++
	}
	// The contract: 500-style statuses must never appear, on any
	// attempt. 503 (shed) and 504 (deadline) are the sanctioned
	// overload outcomes.
	if meta.Status >= 500 && meta.Status != 503 && meta.Status != 504 {
		lc.rep.ServerErrors++
	}
}

// loadMix builds the request stream: a hot set of repeated requests
// (exercising the result cache and singleflight coalescing) blended
// with a rotating cold set (forcing pipeline runs, queueing and —
// under chaos — shedding). Deterministic per sequence number.
func loadMix(seq int64, quick bool, timeoutMS int) (string, any) {
	sizes := []int{96, 128, 160, 192}
	if quick {
		sizes = []int{48, 64, 80, 96}
	}
	r := rand.New(rand.NewSource(seq)) // deterministic stream, varied mix
	hot := seq%2 == 0
	n := sizes[r.Intn(len(sizes))]
	if !hot {
		// Cold: walk a wider n range so most requests miss the cache.
		n += 1 + int(seq/2%64)
	}
	kernel := []string{"sec21", "dmxpy", "conv"}[r.Intn(3)]
	if r.Intn(10) < 3 {
		return "/v1/optimize", &service.OptimizeRequest{
			ProgramRequest: service.ProgramRequest{Kernel: kernel, N: n, TimeoutMS: timeoutMS},
			Verify:         "differential",
		}
	}
	return "/v1/analyze", &service.AnalyzeRequest{
		ProgramRequest: service.ProgramRequest{Kernel: kernel, N: n, TimeoutMS: timeoutMS},
		Belady:         seq%4 == 0,
	}
}

// runLoad drives the load and writes the report. Exit code: 0 clean,
// 1 operational failure, 3 when the resilience contract was violated
// (any 5xx other than 503/504 observed).
func runLoad(opts loadOpts) int {
	if opts.quick && opts.duration > 5*time.Second {
		opts.duration = 5 * time.Second
	}
	c := client.New(client.Config{
		BaseURL:        opts.url,
		AttemptTimeout: opts.timeout + 5*time.Second, // server deadline + margin: a hang, not a slow request
		Chaos:          opts.chaos,
	})
	lc := &loadCollector{status: map[int]int64{}, degraded: map[string]int64{}}
	timeoutMS := int(opts.timeout / time.Millisecond)

	// The run context only gates STARTING calls; each call gets its own
	// deadline so requests in flight when the run window closes finish
	// (and are recorded) instead of being chopped into fake failures.
	ctx, cancel := context.WithTimeout(context.Background(), opts.duration)
	defer cancel()
	var seq atomic.Int64
	// call reports whether the client's open breaker rejected the call
	// without touching the network, so closed-loop workers can pause
	// through the cooldown instead of hot-spinning no-op calls.
	call := func() bool {
		s := seq.Add(1)
		path, req := loadMix(s, opts.quick, timeoutMS)
		cctx, ccancel := context.WithTimeout(context.Background(), 4*(opts.timeout+10*time.Second))
		defer ccancel()
		begin := time.Now()
		var meta client.Meta
		var err error
		if path == "/v1/optimize" {
			_, meta, err = c.Optimize(cctx, req.(*service.OptimizeRequest))
		} else {
			_, meta, err = c.Analyze(cctx, req.(*service.AnalyzeRequest))
		}
		lc.record(meta, err, time.Since(begin))
		return errors.Is(err, client.ErrBreakerOpen)
	}

	begin := time.Now()
	var wg sync.WaitGroup
	if opts.rate > 0 {
		// Open loop: arrivals at a fixed rate, independent of response
		// times — the arrival pattern that actually overloads servers.
		lc.rep.Mode = "open-loop"
		interval := time.Duration(float64(time.Second) / opts.rate)
		tick := time.NewTicker(interval)
		defer tick.Stop()
	open:
		for {
			select {
			case <-ctx.Done():
				break open
			case <-tick.C:
				wg.Add(1)
				go func() { defer wg.Done(); call() }()
			}
		}
	} else {
		// Closed loop: N workers, each waiting for its response before
		// sending the next request.
		lc.rep.Mode = "closed-loop"
		for w := 0; w < opts.workers; w++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				for ctx.Err() == nil {
					if rejected := call(); rejected {
						select {
						case <-ctx.Done():
						case <-time.After(150 * time.Millisecond):
						}
					}
				}
			}()
		}
	}
	wg.Wait()
	elapsed := time.Since(begin)

	rep := lc.finish(elapsed, c)
	data, _ := json.MarshalIndent(rep, "", "  ")
	data = append(data, '\n')
	if opts.out != "" {
		if err := os.WriteFile(opts.out, data, 0o644); err != nil {
			fmt.Fprintln(os.Stderr, "bwbench:", err)
			return 1
		}
	}
	os.Stdout.Write(data)
	fmt.Fprintf(os.Stderr,
		"bwbench: %d requests in %.1fs (%.1f req/s): %d ok (%d cached, %d coalesced, %d degraded), %d shed, %d timeout, %d breaker-rejected, %d failed, %d server errors; p50 %.1fms p95 %.1fms p99 %.1fms\n",
		rep.Requests, rep.DurationSec, rep.Throughput,
		rep.OK, rep.CacheHits, rep.Coalesced, sumValues(rep.Degraded),
		rep.Shed, rep.GatewayTimeouts, rep.BreakerRejected, rep.Failed, rep.ServerErrors,
		rep.LatencyMS.P50, rep.LatencyMS.P95, rep.LatencyMS.P99)
	if rep.Requests == 0 {
		fmt.Fprintln(os.Stderr, "bwbench: no requests completed — is the server reachable?")
		return 1
	}
	if rep.ServerErrors > 0 {
		fmt.Fprintf(os.Stderr, "bwbench: RESILIENCE VIOLATION: %d response(s) with a 5xx other than 503/504\n",
			rep.ServerErrors)
		return 3
	}
	return 0
}

// finish computes the derived fields of the report.
func (lc *loadCollector) finish(elapsed time.Duration, c *client.Client) *loadReport {
	lc.mu.Lock()
	defer lc.mu.Unlock()
	rep := lc.rep
	rep.DurationSec = elapsed.Seconds()
	if rep.DurationSec > 0 {
		rep.Throughput = float64(rep.Requests) / rep.DurationSec
	}
	rep.StatusHist = map[string]int64{}
	for code, n := range lc.status {
		rep.StatusHist[fmt.Sprintf("%d", code)] = n
	}
	rep.Degraded = lc.degraded
	if rep.Requests > 0 {
		rep.ShedRate = float64(rep.Shed) / float64(rep.Requests)
		rep.CoalRate = float64(rep.Coalesced) / float64(rep.Requests)
	}
	sort.Slice(lc.latencies, func(i, j int) bool { return lc.latencies[i] < lc.latencies[j] })
	if n := len(lc.latencies); n > 0 {
		pct := func(p float64) float64 {
			i := int(p * float64(n-1))
			return float64(lc.latencies[i]) / float64(time.Millisecond)
		}
		var sum time.Duration
		for _, d := range lc.latencies {
			sum += d
		}
		rep.LatencyMS = latencySummary{
			P50:  pct(0.50),
			P95:  pct(0.95),
			P99:  pct(0.99),
			Mean: float64(sum) / float64(n) / float64(time.Millisecond),
			Max:  float64(lc.latencies[n-1]) / float64(time.Millisecond),
		}
	}
	state, opens := c.BreakerState()
	rep.Breaker = loadBreakerSummary{State: state, Opens: opens}
	return &rep
}

func sumValues(m map[string]int64) int64 {
	var s int64
	for _, v := range m {
		s += v
	}
	return s
}
