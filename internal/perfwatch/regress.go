package perfwatch

import (
	"fmt"
	"sort"
	"strings"

	"repro/internal/report"
)

// Thresholds configures the regression detector per metric family.
// Wall times are noisy (scheduler, thermal, shared CI runners), so the
// time family compares medians against a generous relative threshold
// and an absolute floor below which changes are indistinguishable from
// timer noise. Balance figures come from the deterministic cache
// simulator, so the balance family uses a tight threshold: any real
// movement there means the compiler or the model changed.
type Thresholds struct {
	// Time is the maximum tolerated relative increase of a median wall
	// time (default 0.20, i.e. +20%).
	Time float64
	// Balance is the maximum tolerated relative increase of a measured
	// bytes-per-flop or demand/supply ratio (default 0.01).
	Balance float64
	// MinTimeNS is the absolute wall-time floor: time metrics whose
	// baseline and current are both below it are never flagged
	// (default 10ms — below that, scheduler jitter swamps real change).
	MinTimeNS int64
}

func (t Thresholds) withDefaults() Thresholds {
	if t.Time <= 0 {
		t.Time = 0.20
	}
	if t.Balance <= 0 {
		t.Balance = 0.01
	}
	if t.MinTimeNS <= 0 {
		t.MinTimeNS = 10_000_000
	}
	return t
}

// Metric families.
const (
	FamilyTime    = "time"
	FamilyBalance = "balance"
)

// Finding is one metric that regressed beyond its family's threshold.
type Finding struct {
	Kernel    string  `json:"kernel"`
	Metric    string  `json:"metric"` // e.g. "optimize_ns", "balance:Mem-L2"
	Family    string  `json:"family"`
	Baseline  float64 `json:"baseline"`
	Current   float64 `json:"current"`
	Delta     float64 `json:"delta"` // relative increase, e.g. 0.31 = +31%
	Threshold float64 `json:"threshold"`
}

func (f Finding) String() string {
	return fmt.Sprintf("%s %s: %+.1f%% (threshold %.0f%%)",
		f.Kernel, f.Metric, 100*f.Delta, 100*f.Threshold)
}

// Row renders the finding for report.Regression.
func (f Finding) Row() report.RegressionRow {
	row := report.RegressionRow{
		Kernel:    f.Kernel,
		Metric:    f.Metric,
		Change:    fmt.Sprintf("%+.1f%%", 100*f.Delta),
		Threshold: fmt.Sprintf("%.0f%%", 100*f.Threshold),
	}
	switch {
	case f.Family == FamilyTime:
		row.Baseline = report.Seconds(f.Baseline / 1e9)
		row.Current = report.Seconds(f.Current / 1e9)
	case strings.HasPrefix(f.Metric, "ratio:"):
		// Demand/supply ratios are dimensionless.
		row.Baseline = fmt.Sprintf("%.4f", f.Baseline)
		row.Current = fmt.Sprintf("%.4f", f.Current)
	default:
		row.Baseline = fmt.Sprintf("%.4f B/F", f.Baseline)
		row.Current = fmt.Sprintf("%.4f B/F", f.Current)
	}
	return row
}

// Detect compares a fresh record against a baseline and returns the
// metrics that regressed beyond their family thresholds, plus
// free-form notes (environment differences, improvements, kernels
// present on only one side). It errors when the records are not
// comparable at all: different schema or different workload config.
func Detect(baseline, current *Record, th Thresholds) (findings []Finding, notes []string, err error) {
	th = th.withDefaults()
	if baseline.Schema != current.Schema {
		return nil, nil, fmt.Errorf("perfwatch: schema mismatch: baseline %d vs current %d",
			baseline.Schema, current.Schema)
	}
	if baseline.Config != current.Config {
		return nil, nil, fmt.Errorf("perfwatch: config mismatch: baseline %q vs current %q (collect with the same -quick setting)",
			baseline.Config, current.Config)
	}
	if baseline.Machine != current.Machine {
		return nil, nil, fmt.Errorf("perfwatch: machine mismatch: baseline %q vs current %q",
			baseline.Machine, current.Machine)
	}
	if !baseline.Env.Same(current.Env) {
		notes = append(notes, fmt.Sprintf(
			"environments differ (baseline %s %s/%s P%d, current %s %s/%s P%d): wall-time comparisons are indicative only",
			baseline.Env.GoVersion, baseline.Env.GOOS, baseline.Env.GOARCH, baseline.Env.GOMAXPROCS,
			current.Env.GoVersion, current.Env.GOOS, current.Env.GOARCH, current.Env.GOMAXPROCS))
	}

	for _, bk := range baseline.Kernels {
		ck := current.Kernel(bk.Kernel)
		if ck == nil {
			notes = append(notes, fmt.Sprintf("kernel %s: in baseline but not in current record", bk.Kernel))
			continue
		}
		findings = append(findings, compareKernel(&bk, ck, th, &notes)...)
	}
	for _, ck := range current.Kernels {
		if baseline.Kernel(ck.Kernel) == nil {
			notes = append(notes, fmt.Sprintf("kernel %s: new in current record (no baseline)", ck.Kernel))
		}
	}
	sort.SliceStable(findings, func(a, b int) bool { return findings[a].Delta > findings[b].Delta })
	return findings, notes, nil
}

func compareKernel(bk, ck *KernelResult, th Thresholds, notes *[]string) []Finding {
	var out []Finding
	addTime := func(metric string, base, cur int64) {
		if base < th.MinTimeNS && cur < th.MinTimeNS {
			return // both under the noise floor
		}
		if base <= 0 {
			return
		}
		delta := float64(cur-base) / float64(base)
		if delta > th.Time {
			out = append(out, Finding{
				Kernel: bk.Kernel, Metric: metric, Family: FamilyTime,
				Baseline: float64(base), Current: float64(cur),
				Delta: delta, Threshold: th.Time,
			})
		}
	}
	addTime("optimize_ns", bk.MedianOptimizeNS, ck.MedianOptimizeNS)
	addTime("measure_ns", bk.MeasureNS, ck.MeasureNS)

	// Per-pass wall times, matched by pass name (a pass missing on
	// either side is a pipeline change, noted rather than flagged).
	curPass := map[string]float64{}
	for _, ps := range ck.Passes {
		curPass[ps.Pass] += ps.Seconds
	}
	basePass := map[string]float64{}
	for _, ps := range bk.Passes {
		basePass[ps.Pass] += ps.Seconds
	}
	for pass, bs := range basePass {
		cs, ok := curPass[pass]
		if !ok {
			*notes = append(*notes, fmt.Sprintf("kernel %s: pass %s in baseline but not in current pipeline", bk.Kernel, pass))
			continue
		}
		addTime("pass_ns:"+pass, int64(bs*1e9), int64(cs*1e9))
	}

	// Balance: deterministic, tight threshold, increases only (a
	// decrease is an improvement and is noted).
	curLevel := map[string]LevelBalance{}
	for _, lv := range ck.Levels {
		curLevel[lv.Channel] = lv
	}
	for _, blv := range bk.Levels {
		clv, ok := curLevel[blv.Channel]
		if !ok {
			*notes = append(*notes, fmt.Sprintf("kernel %s: channel %s in baseline but not in current record", bk.Kernel, blv.Channel))
			continue
		}
		for _, m := range []struct {
			metric    string
			base, cur float64
		}{
			{"balance:" + blv.Channel, blv.Measured, clv.Measured},
			{"ratio:" + blv.Channel, blv.Ratio, clv.Ratio},
		} {
			if m.base <= 0 {
				continue
			}
			delta := (m.cur - m.base) / m.base
			switch {
			case delta > th.Balance:
				out = append(out, Finding{
					Kernel: bk.Kernel, Metric: m.metric, Family: FamilyBalance,
					Baseline: m.base, Current: m.cur,
					Delta: delta, Threshold: th.Balance,
				})
			case delta < -th.Balance:
				*notes = append(*notes, fmt.Sprintf("kernel %s: %s improved %.1f%% (%.4f -> %.4f)",
					bk.Kernel, m.metric, -100*delta, m.base, m.cur))
			}
		}
	}
	return out
}
