// Package client is a resilient Go client for the bwserved HTTP API.
// It wraps the service's /v1/analyze and /v1/optimize endpoints with
// the client-side half of the overload contract that
// internal/service's admission control implements on the server side:
//
//   - bounded retries with exponential backoff and full jitter, so a
//     retrying fleet spreads out instead of synchronizing into waves;
//   - Retry-After honoring: a 503 shed tells the client when capacity
//     is expected back, and the client believes it rather than
//     retrying on its own (shorter) schedule;
//   - per-attempt timeouts, so one black-holed connection costs one
//     attempt, not the whole call budget;
//   - a consecutive-failure circuit breaker: after Threshold failed
//     attempts in a row the client fails fast without touching the
//     network, probing again (half-open) after a cooldown.
//
// The returned Meta reports what the call cost (attempts, sheds
// encountered) and what the service delivered (cache hit, coalesced
// onto another request, degradation level), so load generators and
// operators can see the resilience machinery working.
package client

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"math/rand/v2"
	"net/http"
	"strconv"
	"strings"
	"sync"
	"time"

	"repro/internal/service"
)

// Config tunes a Client. Zero fields take the documented defaults.
type Config struct {
	// BaseURL is the server root, e.g. "http://localhost:8080".
	BaseURL string
	// HTTPClient overrides the transport (default http.DefaultClient;
	// tests pass the httptest server's client).
	HTTPClient *http.Client
	// MaxAttempts bounds tries per call, first attempt included
	// (default 4).
	MaxAttempts int
	// BaseBackoff seeds the exponential backoff schedule: attempt k
	// waits a uniformly random duration in (0, BaseBackoff·2^k],
	// capped at MaxBackoff — "full jitter" (defaults 100ms, 5s). A 503
	// Retry-After above the jittered wait replaces it.
	BaseBackoff time.Duration
	MaxBackoff  time.Duration
	// AttemptTimeout is the per-attempt deadline (default 30s; the
	// call's ctx still bounds the whole call, backoffs included).
	AttemptTimeout time.Duration
	// BreakerThreshold is the consecutive-failure count that opens the
	// circuit breaker (default 5; negative disables the breaker).
	// BreakerCooldown is how long an open breaker rejects calls before
	// letting one probe through (default 2s).
	BreakerThreshold int
	BreakerCooldown  time.Duration
	// Chaos, when non-empty, is sent as the X-Chaos header on every
	// request (per-request fault injection; the server must run with
	// -chaos-header).
	Chaos string
}

func (c Config) withDefaults() Config {
	if c.HTTPClient == nil {
		c.HTTPClient = http.DefaultClient
	}
	if c.MaxAttempts <= 0 {
		c.MaxAttempts = 4
	}
	if c.BaseBackoff <= 0 {
		c.BaseBackoff = 100 * time.Millisecond
	}
	if c.MaxBackoff <= 0 {
		c.MaxBackoff = 5 * time.Second
	}
	if c.AttemptTimeout <= 0 {
		c.AttemptTimeout = 30 * time.Second
	}
	if c.BreakerThreshold == 0 {
		c.BreakerThreshold = 5
	}
	if c.BreakerCooldown <= 0 {
		c.BreakerCooldown = 2 * time.Second
	}
	return c
}

// Meta reports how one call went: what it cost and what service level
// the server delivered.
type Meta struct {
	// Status is the final HTTP status (0 if no attempt got a response).
	Status int
	// Attempts is the number of HTTP attempts made (≥ 1 unless the
	// breaker rejected the call outright).
	Attempts int
	// Sheds counts 503 responses encountered across attempts.
	Sheds int
	// Cached/Coalesced/Degraded describe the successful response:
	// answered from the result cache, shared from an identical
	// in-flight request, or served below full service (Degraded is the
	// ladder-rung name, "" at full service).
	Cached    bool
	Coalesced bool
	Degraded  string
	// TraceID is the X-Trace-Id of the last response.
	TraceID string
}

// StatusError is a terminal non-2xx outcome: either non-retryable
// (4xx) or still failing when the attempt budget ran out.
type StatusError struct {
	Code    int
	Message string
	// RetryAfter is the server's backoff hint on a 503, zero otherwise.
	RetryAfter time.Duration
}

func (e *StatusError) Error() string {
	return fmt.Sprintf("server returned %d: %s", e.Code, e.Message)
}

// ErrBreakerOpen is returned (wrapped) when the circuit breaker
// rejects a call without touching the network.
var ErrBreakerOpen = errors.New("circuit breaker open")

// breakerState is the classic three-state machine.
type breakerState int

const (
	breakerClosed breakerState = iota
	breakerOpen
	breakerHalfOpen
)

func (s breakerState) String() string {
	switch s {
	case breakerClosed:
		return "closed"
	case breakerOpen:
		return "open"
	case breakerHalfOpen:
		return "half-open"
	}
	return "unknown"
}

// Client is a resilient bwserved API client. Safe for concurrent use.
type Client struct {
	cfg Config

	mu       sync.Mutex
	state    breakerState
	failures int       // consecutive failed attempts
	openedAt time.Time // when the breaker last opened
	opens    int64     // cumulative opens (for load reports)
	probing  bool      // a half-open probe is in flight
}

// New builds a Client for the server at cfg.BaseURL.
func New(cfg Config) *Client {
	return &Client{cfg: cfg.withDefaults()}
}

// BreakerState reports the breaker position ("closed", "open",
// "half-open") and how often it has opened since the client was built.
func (c *Client) BreakerState() (state string, opens int64) {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.breakerNow().String(), c.opens
}

// breakerNow resolves time-based transitions (open → half-open after
// the cooldown). Called with c.mu held.
func (c *Client) breakerNow() breakerState {
	if c.state == breakerOpen && time.Since(c.openedAt) >= c.cfg.BreakerCooldown {
		c.state = breakerHalfOpen
		c.probing = false
	}
	return c.state
}

// breakerAllow decides whether an attempt may touch the network. In
// half-open exactly one probe is admitted; its outcome closes or
// re-opens the breaker.
func (c *Client) breakerAllow() error {
	if c.cfg.BreakerThreshold < 0 {
		return nil
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	switch c.breakerNow() {
	case breakerOpen:
		return fmt.Errorf("%w (retry in %v)", ErrBreakerOpen,
			(c.cfg.BreakerCooldown - time.Since(c.openedAt)).Round(time.Millisecond))
	case breakerHalfOpen:
		if c.probing {
			return fmt.Errorf("%w (probe in flight)", ErrBreakerOpen)
		}
		c.probing = true
	}
	return nil
}

// breakerRecord folds one attempt's outcome into the breaker.
func (c *Client) breakerRecord(ok bool) {
	if c.cfg.BreakerThreshold < 0 {
		return
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if ok {
		c.state = breakerClosed
		c.failures = 0
		c.probing = false
		return
	}
	c.failures++
	if c.state == breakerHalfOpen || c.failures >= c.cfg.BreakerThreshold {
		if c.state != breakerOpen {
			c.opens++
		}
		c.state = breakerOpen
		c.openedAt = time.Now()
		c.probing = false
	}
}

// backoff returns the full-jitter wait before attempt k+1, floored by
// the server's Retry-After hint when one was given.
func (c *Client) backoff(k int, retryAfter time.Duration) time.Duration {
	max := c.cfg.BaseBackoff << k
	if max > c.cfg.MaxBackoff || max <= 0 {
		max = c.cfg.MaxBackoff
	}
	d := time.Duration(rand.Int64N(int64(max)) + 1)
	if retryAfter > d {
		d = retryAfter
	}
	return d
}

// Analyze calls POST /v1/analyze.
func (c *Client) Analyze(ctx context.Context, req *service.AnalyzeRequest) (*service.AnalyzeResponse, Meta, error) {
	var resp service.AnalyzeResponse
	meta, err := c.do(ctx, "/v1/analyze", req, &resp)
	if err != nil {
		return nil, meta, err
	}
	meta.Cached, meta.Coalesced = resp.Cached, resp.Coalesced
	if resp.Degraded != nil {
		meta.Degraded = resp.Degraded.Mode
	}
	return &resp, meta, nil
}

// Optimize calls POST /v1/optimize.
func (c *Client) Optimize(ctx context.Context, req *service.OptimizeRequest) (*service.OptimizeResponse, Meta, error) {
	var resp service.OptimizeResponse
	meta, err := c.do(ctx, "/v1/optimize", req, &resp)
	if err != nil {
		return nil, meta, err
	}
	meta.Cached, meta.Coalesced = resp.Cached, resp.Coalesced
	if resp.Degraded != nil {
		meta.Degraded = resp.Degraded.Mode
	}
	return &resp, meta, nil
}

// retryable reports whether a status is worth another attempt: sheds
// (503) and server-side trouble (5xx, 504) may clear; client errors
// (4xx) will not.
func retryable(status int) bool { return status >= 500 }

// do runs the retry loop for one logical call.
func (c *Client) do(ctx context.Context, path string, req, out any) (Meta, error) {
	var meta Meta
	body, err := json.Marshal(req)
	if err != nil {
		return meta, fmt.Errorf("client: encoding request: %w", err)
	}
	var last error
	for k := 0; k < c.cfg.MaxAttempts; k++ {
		if err := ctx.Err(); err != nil {
			return meta, err
		}
		if err := c.breakerAllow(); err != nil {
			if last != nil {
				return meta, fmt.Errorf("%w (last error: %v)", err, last)
			}
			return meta, err
		}
		meta.Attempts++
		status, retryAfter, err := c.attempt(ctx, path, body, out, &meta)
		c.breakerRecord(err == nil)
		if err == nil {
			return meta, nil
		}
		last = err
		if status == http.StatusServiceUnavailable {
			meta.Sheds++
		}
		if status != 0 && !retryable(status) {
			return meta, err // 4xx: retrying cannot help
		}
		if k == c.cfg.MaxAttempts-1 {
			break
		}
		select {
		case <-time.After(c.backoff(k, retryAfter)):
		case <-ctx.Done():
			return meta, ctx.Err()
		}
	}
	return meta, fmt.Errorf("client: %d attempts exhausted: %w", meta.Attempts, last)
}

// attempt performs one HTTP round trip under the per-attempt timeout.
// It returns the response status (0 for transport errors) and any
// Retry-After hint alongside the error.
func (c *Client) attempt(ctx context.Context, path string, body []byte, out any, meta *Meta) (int, time.Duration, error) {
	actx, cancel := context.WithTimeout(ctx, c.cfg.AttemptTimeout)
	defer cancel()
	hreq, err := http.NewRequestWithContext(actx, http.MethodPost,
		strings.TrimRight(c.cfg.BaseURL, "/")+path, bytes.NewReader(body))
	if err != nil {
		return 0, 0, fmt.Errorf("client: building request: %w", err)
	}
	hreq.Header.Set("Content-Type", "application/json")
	if c.cfg.Chaos != "" {
		hreq.Header.Set("X-Chaos", c.cfg.Chaos)
	}
	hresp, err := c.cfg.HTTPClient.Do(hreq)
	if err != nil {
		return 0, 0, fmt.Errorf("client: %w", err)
	}
	defer hresp.Body.Close()
	meta.Status = hresp.StatusCode
	if id := hresp.Header.Get("X-Trace-Id"); id != "" {
		meta.TraceID = id
	}
	data, err := io.ReadAll(io.LimitReader(hresp.Body, 16<<20))
	if err != nil {
		return hresp.StatusCode, 0, fmt.Errorf("client: reading response: %w", err)
	}
	if hresp.StatusCode != http.StatusOK {
		se := &StatusError{Code: hresp.StatusCode}
		if secs, err := strconv.Atoi(hresp.Header.Get("Retry-After")); err == nil && secs > 0 {
			se.RetryAfter = time.Duration(secs) * time.Second
		}
		var e service.ErrorResponse
		if json.Unmarshal(data, &e) == nil && e.Error != "" {
			se.Message = e.Error
		} else {
			se.Message = strings.TrimSpace(string(data))
		}
		return hresp.StatusCode, se.RetryAfter, se
	}
	if err := json.Unmarshal(data, out); err != nil {
		return hresp.StatusCode, 0, fmt.Errorf("client: decoding response: %w", err)
	}
	return hresp.StatusCode, 0, nil
}
