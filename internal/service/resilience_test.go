package service

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/faults"
)

// postJSONHeaders is postJSON with extra request headers (X-Chaos).
func postJSONHeaders(t *testing.T, url string, body any, hdr map[string]string) (*http.Response, []byte) {
	t.Helper()
	b, err := json.Marshal(body)
	if err != nil {
		t.Fatal(err)
	}
	req, err := http.NewRequest(http.MethodPost, url, bytes.NewReader(b))
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("Content-Type", "application/json")
	for k, v := range hdr {
		req.Header.Set(k, v)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var out bytes.Buffer
	out.ReadFrom(resp.Body)
	return resp, out.Bytes()
}

// TestCoalescing is the issue's acceptance test: N identical
// concurrent requests perform exactly one pipeline run; followers
// share the leader's result and carry the coalesced marker.
func TestCoalescing(t *testing.T) {
	const n = 8
	s, ts := newTestServer(t, Config{
		Workers: 2,
		// Stall the leader's worker slot long enough for every
		// follower to arrive and coalesce onto its flight.
		Faults: faults.MustParse("worker.stall:once,delay=500ms"),
	})

	body := map[string]any{"kernel": "sec21", "n": 2048, "verify": "structural"}
	type result struct {
		status    int
		coalesced bool
		header    string
	}
	results := make([]result, n)
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			resp, b := postJSON(t, ts.URL+"/v1/optimize", body)
			var or OptimizeResponse
			json.Unmarshal(b, &or)
			results[i] = result{resp.StatusCode, or.Coalesced, resp.Header.Get("X-Coalesced")}
		}(i)
	}
	wg.Wait()

	coalesced := 0
	for i, r := range results {
		if r.status != http.StatusOK {
			t.Fatalf("request %d: status %d", i, r.status)
		}
		if r.coalesced != (r.header == "1") {
			t.Fatalf("request %d: body coalesced=%v but header %q", i, r.coalesced, r.header)
		}
		if r.coalesced {
			coalesced++
		}
	}
	// Every request after the leader must have coalesced (they all
	// arrived during the leader's 500ms stall).
	if coalesced != n-1 {
		t.Fatalf("coalesced %d of %d requests, want %d", coalesced, n, n-1)
	}
	// The load-bearing assertion: one optimize-stage run total.
	if got := s.stageSeconds.With("optimize").Count(); got != 1 {
		t.Fatalf("pipeline ran %d times for %d identical requests, want exactly 1", got, n)
	}
	if got := s.coalesced.Value(); got != float64(n-1) {
		t.Fatalf("bwserved_coalesced_total = %v, want %d", got, n-1)
	}
}

// TestShedding drives the queue past MaxQueue and expects a 503 with
// Retry-After rather than unbounded queueing.
func TestShedding(t *testing.T) {
	s, ts := newTestServer(t, Config{
		Workers:  1,
		MaxQueue: 1,
		// Every pipeline run stalls its worker slot for 1s, so a
		// second distinct request finds the queue at its cap.
		Faults: faults.MustParse("worker.stall:nth=1,delay=1s"),
	})

	done := make(chan int, 1)
	go func() {
		resp, _ := postJSON(t, ts.URL+"/v1/analyze", map[string]any{"kernel": "sec21", "n": 1024})
		done <- resp.StatusCode
	}()
	// Wait until the first request holds the worker (stalling), so the
	// second is deterministically behind it.
	deadline := time.Now().Add(2 * time.Second)
	for s.workersBusy.Value() < 1 {
		if time.Now().After(deadline) {
			t.Fatal("first request never acquired a worker")
		}
		time.Sleep(5 * time.Millisecond)
	}

	resp, body := postJSON(t, ts.URL+"/v1/analyze", map[string]any{"kernel": "sec21", "n": 4096})
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("status %d, want 503: %s", resp.StatusCode, body)
	}
	if ra := resp.Header.Get("Retry-After"); ra == "" {
		t.Fatal("503 without Retry-After header")
	}
	if !strings.Contains(string(body), "overloaded") {
		t.Fatalf("shed body does not say overloaded: %s", body)
	}
	if got := s.shed.Value(); got != 1 {
		t.Fatalf("bwserved_shed_total = %v, want 1", got)
	}
	if code := <-done; code != http.StatusOK {
		t.Fatalf("stalled first request finished %d, want 200", code)
	}
}

// TestDegradationLadder primes the pipeline-cost estimate with one
// slow run, then sends a request whose deadline cannot afford full
// service and expects a degraded 200.
func TestDegradationLadder(t *testing.T) {
	s, ts := newTestServer(t, Config{
		Workers: 1,
		// Exactly one injected slow analysis: the priming run is slow
		// (inflating the EWMA), every later run is fast.
		Faults: faults.MustParse("analysis.slow:once,delay=400ms"),
	})

	// Prime: a full-service optimize whose wall time (≥ 400ms) becomes
	// the cost estimate.
	resp, body := postJSON(t, ts.URL+"/v1/optimize", map[string]any{
		"kernel": "sec21", "n": 1024, "verify": "differential",
	})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("priming run: status %d: %s", resp.StatusCode, body)
	}
	var prime OptimizeResponse
	json.Unmarshal(body, &prime)
	if prime.Degraded != nil {
		t.Fatalf("priming run degraded: %+v", prime.Degraded)
	}
	if est := s.pipeEWMA(); est < 0.4 {
		t.Fatalf("EWMA = %.3fs after 400ms-stalled run, want ≥ 0.4s", est)
	}

	// A distinct request with a 250ms deadline: under a ≥ 400ms
	// estimate the ladder must clamp differential verification away
	// (rung 1 or 2 depending on the exact estimate) — and the run
	// itself is fast now, so it completes inside the deadline.
	resp, body = postJSON(t, ts.URL+"/v1/optimize", map[string]any{
		"kernel": "dmxpy", "n": 96, "verify": "differential", "timeout_ms": 250,
	})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("degraded run: status %d: %s", resp.StatusCode, body)
	}
	var or OptimizeResponse
	if err := json.Unmarshal(body, &or); err != nil {
		t.Fatal(err)
	}
	if or.Degraded == nil {
		t.Fatalf("response not degraded under a deadline below the cost estimate: %s", body)
	}
	if or.Degraded.Level < 1 || or.Degraded.Level > 2 {
		t.Fatalf("degrade level %d, want 1 (no-differential) or 2 (structural-only)", or.Degraded.Level)
	}
	if or.Verification.Mode == "differential" {
		t.Fatalf("degraded response still verified differentially: %+v", or.Verification)
	}
	if resp.Header.Get("X-Degraded") != or.Degraded.Mode {
		t.Fatalf("X-Degraded = %q, body mode %q", resp.Header.Get("X-Degraded"), or.Degraded.Mode)
	}
	if got := s.degraded.With(or.Degraded.Mode).Value(); got != 1 {
		t.Fatalf("bwserved_degraded_total{%s} = %v, want 1", or.Degraded.Mode, got)
	}
	// Structural-only responses must omit measurement, others keep it.
	if or.Degraded.Level >= 2 && or.Before != nil {
		t.Fatal("structural-only response still carries measurement")
	}
	if or.Degraded.Level == 1 && (or.Before == nil || or.After == nil) {
		t.Fatal("no-differential response lost its measurement")
	}

	// Cache-poisoning check: a later full-deadline differential request
	// for the same program must NOT be served the degraded result.
	resp, body = postJSON(t, ts.URL+"/v1/optimize", map[string]any{
		"kernel": "dmxpy", "n": 96, "verify": "differential",
	})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("follow-up full run: status %d: %s", resp.StatusCode, body)
	}
	var full OptimizeResponse
	json.Unmarshal(body, &full)
	if full.Cached {
		t.Fatal("degraded result was cached under the full request's key")
	}
	if full.Degraded != nil || full.Verification.Mode != "differential" {
		t.Fatalf("full-deadline request degraded: %s", body)
	}
}

// TestDegradationCacheOnlyShed: when the deadline affords not even a
// quarter of the estimated cost and nothing is cached, the request is
// shed, not hung.
func TestDegradationCacheOnlyShed(t *testing.T) {
	_, ts := newTestServer(t, Config{
		Workers: 1,
		Faults:  faults.MustParse("analysis.slow:once,delay=400ms"),
	})
	resp, body := postJSON(t, ts.URL+"/v1/optimize", map[string]any{
		"kernel": "sec21", "n": 1024, "verify": "differential",
	})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("priming run: status %d: %s", resp.StatusCode, body)
	}
	// 30ms deadline vs ≥ 400ms estimate: rung 3, nothing cached → 503.
	resp, body = postJSON(t, ts.URL+"/v1/optimize", map[string]any{
		"kernel": "dmxpy", "n": 80, "verify": "differential", "timeout_ms": 30,
	})
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("status %d, want 503: %s", resp.StatusCode, body)
	}
	if !strings.Contains(string(body), "cache-only") {
		t.Fatalf("shed reason does not mention cache-only: %s", body)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Fatal("cache-only shed without Retry-After")
	}
}

// TestChaosAcceptance is the issue's core invariant: under injected
// pass panics, slow analyses, worker stalls and cache errors, every
// request resolves as 200 (possibly degraded) or 503 with Retry-After
// — never a 500, a hang, or a leaked worker slot.
func TestChaosAcceptance(t *testing.T) {
	s, ts := newTestServer(t, Config{
		Workers:  2,
		MaxQueue: 3,
		Faults: faults.MustParse(
			"pass.panic:nth=3;analysis.slow:nth=5,delay=30ms;worker.stall:nth=4,delay=60ms;cache.error:nth=7"),
	})

	kernels := []map[string]any{
		{"kernel": "sec21", "n": 1024, "verify": "differential"},
		{"kernel": "sec21", "n": 1024, "verify": "differential"}, // duplicate: coalescing under chaos
		{"kernel": "conv", "n": 2048},
		{"kernel": "dmxpy", "n": 64, "verify": "structural"},
		{"kernel": "fig7", "n": 1024},
	}
	const rounds = 8
	var wg sync.WaitGroup
	errs := make(chan error, rounds*len(kernels))
	for r := 0; r < rounds; r++ {
		for i, k := range kernels {
			wg.Add(1)
			go func(r, i int, body map[string]any) {
				defer wg.Done()
				path := "/v1/optimize"
				if _, ok := body["verify"]; !ok {
					path = "/v1/analyze"
				}
				resp, b := postJSON(t, ts.URL+path, body)
				switch resp.StatusCode {
				case http.StatusOK:
				case http.StatusServiceUnavailable:
					if resp.Header.Get("Retry-After") == "" {
						errs <- fmt.Errorf("round %d req %d: 503 without Retry-After", r, i)
					}
				default:
					errs <- fmt.Errorf("round %d req %d: status %d: %s", r, i, resp.StatusCode, b)
				}
			}(r, i, k)
		}
		time.Sleep(10 * time.Millisecond) // staggered arrivals, like real load
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}

	// No leaked worker slots or queue entries once the dust settles.
	deadline := time.Now().Add(2 * time.Second)
	for s.workersBusy.Value() != 0 || s.queueDepth.Value() != 0 {
		if time.Now().After(deadline) {
			t.Fatalf("leaked slots: workers_busy=%v queue_depth=%v",
				s.workersBusy.Value(), s.queueDepth.Value())
		}
		time.Sleep(10 * time.Millisecond)
	}
	// And the pool still serves.
	resp, body := postJSON(t, ts.URL+"/v1/analyze", map[string]any{"kernel": "sec21", "n": 512})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("post-chaos request: status %d: %s", resp.StatusCode, body)
	}
}

// TestExecCancelInjection: an injected execution cancellation surfaces
// as the deadline status (504), and the worker slot is reclaimed.
func TestExecCancelInjection(t *testing.T) {
	s, ts := newTestServer(t, Config{
		Workers: 1,
		Faults:  faults.MustParse("exec.cancel:nth=1"),
	})
	resp, body := postJSON(t, ts.URL+"/v1/analyze", map[string]any{"kernel": "sec21", "n": 1024})
	if resp.StatusCode != http.StatusGatewayTimeout {
		t.Fatalf("status %d, want 504: %s", resp.StatusCode, body)
	}
	if !strings.Contains(string(body), faults.ExecCancel) {
		t.Fatalf("error does not name the injected point: %s", body)
	}
	if s.workersBusy.Value() != 0 {
		t.Fatalf("worker slot leaked after injected cancel: %v", s.workersBusy.Value())
	}
}

// TestChaosHeader: per-request fault specs are an explicit opt-in and
// are validated.
func TestChaosHeader(t *testing.T) {
	t.Run("rejected when disabled", func(t *testing.T) {
		_, ts := newTestServer(t, Config{})
		resp, body := postJSONHeaders(t, ts.URL+"/v1/analyze",
			map[string]any{"kernel": "sec21", "n": 512},
			map[string]string{"X-Chaos": "exec.cancel:nth=1"})
		if resp.StatusCode != http.StatusBadRequest {
			t.Fatalf("status %d, want 400: %s", resp.StatusCode, body)
		}
	})
	t.Run("applied when enabled", func(t *testing.T) {
		_, ts := newTestServer(t, Config{ChaosHeader: true})
		resp, body := postJSONHeaders(t, ts.URL+"/v1/analyze",
			map[string]any{"kernel": "sec21", "n": 512},
			map[string]string{"X-Chaos": "exec.cancel:nth=1"})
		if resp.StatusCode != http.StatusGatewayTimeout {
			t.Fatalf("status %d, want 504 from injected cancel: %s", resp.StatusCode, body)
		}
		// Same request without the header is untouched.
		resp, body = postJSON(t, ts.URL+"/v1/analyze", map[string]any{"kernel": "sec21", "n": 512})
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("un-chaosed request: status %d: %s", resp.StatusCode, body)
		}
	})
	t.Run("bad spec is 400", func(t *testing.T) {
		_, ts := newTestServer(t, Config{ChaosHeader: true})
		resp, body := postJSONHeaders(t, ts.URL+"/v1/analyze",
			map[string]any{"kernel": "sec21", "n": 512},
			map[string]string{"X-Chaos": "no.such.point:nth=1"})
		if resp.StatusCode != http.StatusBadRequest {
			t.Fatalf("status %d, want 400: %s", resp.StatusCode, body)
		}
	})
}

// flushErrWriter fails Flush, exercising Close's error latching.
type flushErrWriter struct{ err error }

func (w *flushErrWriter) Write(p []byte) (int, error) { return len(p), nil }
func (w *flushErrWriter) Flush() error                { return w.err }

// TestCloseIdempotentConcurrent: Close is safe to call repeatedly and
// concurrently — including with requests in flight — and every call
// reports the first close's outcome.
func TestCloseIdempotentConcurrent(t *testing.T) {
	flushErr := errors.New("disk full")
	s, ts := newTestServer(t, Config{
		Workers:        2,
		SampleInterval: time.Millisecond, // a live sampler goroutine to stop
		LogWriter:      &flushErrWriter{err: flushErr},
	})

	var reqs sync.WaitGroup
	for i := 0; i < 4; i++ {
		reqs.Add(1)
		go func(i int) {
			defer reqs.Done()
			postJSON(t, ts.URL+"/v1/analyze", map[string]any{"kernel": "sec21", "n": 1024 + i})
		}(i)
	}

	const closers = 8
	errsCh := make(chan error, closers)
	var wg sync.WaitGroup
	for i := 0; i < closers; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			errsCh <- s.Close()
		}()
	}
	wg.Wait()
	close(errsCh)
	for err := range errsCh {
		if !errors.Is(err, flushErr) {
			t.Fatalf("Close() = %v, want the latched flush error from every call", err)
		}
	}
	reqs.Wait()
	// And once more after everything drained.
	if err := s.Close(); !errors.Is(err, flushErr) {
		t.Fatalf("late Close() = %v, want latched error", err)
	}
}

// TestTraceIDFallback: when the entropy source fails, trace IDs
// degrade to unique counter-derived values and the failure is logged
// exactly once.
func TestTraceIDFallback(t *testing.T) {
	orig := randRead
	randRead = func(b []byte) (int, error) { return 0, errors.New("entropy exhausted") }
	defer func() { randRead = orig }()

	var logBuf bytes.Buffer
	_, ts := newTestServer(t, Config{LogWriter: &logBuf})

	ids := map[string]bool{}
	for i := 0; i < 3; i++ {
		resp, body := postJSON(t, ts.URL+"/v1/analyze", map[string]any{"kernel": "sec21", "n": 512})
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("status %d: %s", resp.StatusCode, body)
		}
		id := resp.Header.Get("X-Trace-Id")
		if len(id) != 16 || id == "0000000000000000" {
			t.Fatalf("fallback trace ID %q: want 16 hex digits, non-degenerate", id)
		}
		if ids[id] {
			t.Fatalf("duplicate fallback trace ID %q", id)
		}
		ids[id] = true
	}
	if got := strings.Count(logBuf.String(), "trace_id_fallback"); got != 1 {
		t.Fatalf("fallback logged %d times, want exactly once:\n%s", got, logBuf.String())
	}
}

// TestLevelFor pins the ladder thresholds.
func TestLevelFor(t *testing.T) {
	est := 400 * time.Millisecond
	cases := []struct {
		remaining time.Duration
		want      degradeLevel
	}{
		{500 * time.Millisecond, degradeNone},
		{400 * time.Millisecond, degradeNone},
		{399 * time.Millisecond, degradeNoDiff},
		{200 * time.Millisecond, degradeNoDiff},
		{199 * time.Millisecond, degradeStructural},
		{100 * time.Millisecond, degradeStructural},
		{99 * time.Millisecond, degradeCacheOnly},
		{0, degradeCacheOnly},
	}
	for _, c := range cases {
		if got := levelFor(c.remaining, est); got != c.want {
			t.Errorf("levelFor(%v, %v) = %v, want %v", c.remaining, est, got, c.want)
		}
	}
	if got := levelFor(time.Millisecond, 0); got != degradeNone {
		t.Errorf("no estimate must mean full service, got %v", got)
	}
}
