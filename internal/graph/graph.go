// Package graph provides small, allocation-conscious directed and
// undirected graph utilities used throughout the fusion and min-cut
// machinery: adjacency storage, breadth-first and depth-first search,
// reachability, topological ordering and cycle detection.
//
// Vertices are dense integers in [0, N). All algorithms are
// deterministic: neighbors are visited in insertion order.
package graph

import (
	"fmt"
	"sort"
)

// Digraph is a directed graph over vertices 0..N-1 with adjacency lists.
// The zero value is an empty graph with no vertices; use New to create a
// graph with a fixed vertex count.
type Digraph struct {
	adj [][]int
	m   int // edge count
}

// New returns a directed graph with n vertices and no edges.
func New(n int) *Digraph {
	if n < 0 {
		panic("graph: negative vertex count")
	}
	return &Digraph{adj: make([][]int, n)}
}

// N returns the number of vertices.
func (g *Digraph) N() int { return len(g.adj) }

// M returns the number of edges.
func (g *Digraph) M() int { return g.m }

// AddVertex appends a new vertex and returns its index.
func (g *Digraph) AddVertex() int {
	g.adj = append(g.adj, nil)
	return len(g.adj) - 1
}

// AddEdge inserts the directed edge u->v. Parallel edges are permitted.
func (g *Digraph) AddEdge(u, v int) {
	g.check(u)
	g.check(v)
	g.adj[u] = append(g.adj[u], v)
	g.m++
}

// HasEdge reports whether at least one edge u->v exists.
func (g *Digraph) HasEdge(u, v int) bool {
	g.check(u)
	g.check(v)
	for _, w := range g.adj[u] {
		if w == v {
			return true
		}
	}
	return false
}

// Neighbors returns the adjacency list of u. The returned slice is owned
// by the graph and must not be modified.
func (g *Digraph) Neighbors(u int) []int {
	g.check(u)
	return g.adj[u]
}

func (g *Digraph) check(u int) {
	if u < 0 || u >= len(g.adj) {
		panic(fmt.Sprintf("graph: vertex %d out of range [0,%d)", u, len(g.adj)))
	}
}

// Reverse returns a new graph with every edge direction flipped.
func (g *Digraph) Reverse() *Digraph {
	r := New(g.N())
	for u, vs := range g.adj {
		for _, v := range vs {
			r.AddEdge(v, u)
		}
	}
	return r
}

// BFS performs a breadth-first traversal from src and returns the
// predecessor array: prev[v] is the vertex from which v was first
// reached, prev[src] == src, and prev[v] == -1 for unreached vertices.
func (g *Digraph) BFS(src int) []int {
	g.check(src)
	prev := make([]int, g.N())
	for i := range prev {
		prev[i] = -1
	}
	prev[src] = src
	queue := []int{src}
	for len(queue) > 0 {
		u := queue[0]
		queue = queue[1:]
		for _, v := range g.adj[u] {
			if prev[v] == -1 {
				prev[v] = u
				queue = append(queue, v)
			}
		}
	}
	return prev
}

// Reachable returns the set of vertices reachable from src (including
// src itself) as a boolean slice.
func (g *Digraph) Reachable(src int) []bool {
	prev := g.BFS(src)
	out := make([]bool, len(prev))
	for i, p := range prev {
		out[i] = p != -1
	}
	return out
}

// Path reconstructs a shortest path (in edges) from src to dst using BFS,
// or returns nil if dst is unreachable.
func (g *Digraph) Path(src, dst int) []int {
	g.check(dst)
	prev := g.BFS(src)
	if prev[dst] == -1 {
		return nil
	}
	var rev []int
	for v := dst; ; v = prev[v] {
		rev = append(rev, v)
		if v == src {
			break
		}
	}
	for i, j := 0, len(rev)-1; i < j; i, j = i+1, j-1 {
		rev[i], rev[j] = rev[j], rev[i]
	}
	return rev
}

// TopoSort returns a topological ordering of the vertices, or an error
// if the graph contains a cycle. Ordering is deterministic: among ready
// vertices the smallest index is emitted first.
func (g *Digraph) TopoSort() ([]int, error) {
	n := g.N()
	indeg := make([]int, n)
	for _, vs := range g.adj {
		for _, v := range vs {
			indeg[v]++
		}
	}
	// Min-heap by vertex index for determinism; n is small in practice,
	// so a sorted slice is sufficient.
	var ready []int
	for v := 0; v < n; v++ {
		if indeg[v] == 0 {
			ready = append(ready, v)
		}
	}
	order := make([]int, 0, n)
	for len(ready) > 0 {
		sort.Ints(ready)
		u := ready[0]
		ready = ready[1:]
		order = append(order, u)
		for _, v := range g.adj[u] {
			indeg[v]--
			if indeg[v] == 0 {
				ready = append(ready, v)
			}
		}
	}
	if len(order) != n {
		return nil, fmt.Errorf("graph: cycle detected (%d of %d vertices ordered)", len(order), n)
	}
	return order, nil
}

// HasCycle reports whether the graph contains a directed cycle.
func (g *Digraph) HasCycle() bool {
	_, err := g.TopoSort()
	return err != nil
}

// TransitiveClosure returns reach[u][v] == true iff v is reachable from u.
// Intended for the small graphs (tens of nodes) used in fusion analysis.
func (g *Digraph) TransitiveClosure() [][]bool {
	n := g.N()
	reach := make([][]bool, n)
	for u := 0; u < n; u++ {
		reach[u] = g.Reachable(u)
	}
	return reach
}

// Ungraph is an undirected graph over vertices 0..N-1.
type Ungraph struct {
	d *Digraph
}

// NewUn returns an undirected graph with n vertices.
func NewUn(n int) *Ungraph { return &Ungraph{d: New(n)} }

// N returns the number of vertices.
func (g *Ungraph) N() int { return g.d.N() }

// AddEdge inserts the undirected edge {u,v}.
func (g *Ungraph) AddEdge(u, v int) {
	g.d.AddEdge(u, v)
	if u != v {
		g.d.AddEdge(v, u)
	}
}

// HasEdge reports whether {u,v} is an edge.
func (g *Ungraph) HasEdge(u, v int) bool { return g.d.HasEdge(u, v) }

// Neighbors returns the neighbors of u (owned by the graph).
func (g *Ungraph) Neighbors(u int) []int { return g.d.Neighbors(u) }

// Components returns the connected-component id of each vertex, numbered
// from 0 in order of first appearance, plus the component count.
func (g *Ungraph) Components() (comp []int, count int) {
	n := g.N()
	comp = make([]int, n)
	for i := range comp {
		comp[i] = -1
	}
	for v := 0; v < n; v++ {
		if comp[v] != -1 {
			continue
		}
		comp[v] = count
		queue := []int{v}
		for len(queue) > 0 {
			u := queue[0]
			queue = queue[1:]
			for _, w := range g.d.adj[u] {
				if comp[w] == -1 {
					comp[w] = count
					queue = append(queue, w)
				}
			}
		}
		count++
	}
	return comp, count
}

// Connected reports whether u and v are in the same component.
func (g *Ungraph) Connected(u, v int) bool {
	return g.d.Reachable(u)[v]
}
