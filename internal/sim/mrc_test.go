package sim

import (
	"math/rand"
	"testing"
)

// replayFixed runs a synthetic trace against a fresh fixed-geometry
// hierarchy and returns it after Flush.
func replayFixed(t *testing.T, cfgs []CacheConfig, trace []traceOp) *Hierarchy {
	t.Helper()
	h := MustHierarchy(cfgs...)
	for _, op := range trace {
		if op.write {
			h.Store(op.addr, op.size)
		} else {
			h.Load(op.addr, op.size)
		}
	}
	h.Flush()
	return h
}

type traceOp struct {
	addr  int64
	size  int
	write bool
}

func randomTrace(r *rand.Rand, n int, span int64) []traceOp {
	ops := make([]traceOp, n)
	for i := range ops {
		ops[i] = traceOp{
			addr:  r.Int63n(span),
			size:  8,
			write: r.Intn(3) == 0,
		}
	}
	return ops
}

// TestMRCMatchesFixedSimAcrossAssociativities is the core differential
// test: one recorded pass evaluated at associativity A must equal a
// separate fixed simulation with A ways (same sets, same line size),
// for every A, including miss and writeback counts after Flush.
func TestMRCMatchesFixedSimAcrossAssociativities(t *testing.T) {
	r := rand.New(rand.NewSource(7))
	trace := randomTrace(r, 4000, 1<<13) // 8 KB span, 256 distinct 32 B lines
	const nsets, ls = 8, 32

	// One pass at an arbitrary reference associativity with MRC on.
	ref := MustHierarchy(CacheConfig{Name: "L1", Size: nsets * ls * 2, LineSize: ls, Assoc: 2})
	if err := ref.EnableMRC(); err != nil {
		t.Fatal(err)
	}
	for _, op := range trace {
		if op.write {
			ref.Store(op.addr, op.size)
		} else {
			ref.Load(op.addr, op.size)
		}
	}
	ref.Flush()

	for assoc := 1; assoc <= 40; assoc++ {
		fixed := replayFixed(t, []CacheConfig{{Name: "L1", Size: nsets * ls * assoc, LineSize: ls, Assoc: assoc}}, trace)
		want := fixed.LevelStats(0)
		got := ref.MRC().Eval(0, int64(assoc))
		if got != want {
			t.Fatalf("assoc %d: mrc %+v != fixed sim %+v", assoc, got, want)
		}
	}
}

// TestMRCWriteThrough checks the write-through policy sweep: no
// writebacks at any capacity, BytesOut constant.
func TestMRCWriteThrough(t *testing.T) {
	r := rand.New(rand.NewSource(11))
	trace := randomTrace(r, 2000, 1<<12)
	const nsets, ls = 4, 32
	cfg := func(assoc int) []CacheConfig {
		return []CacheConfig{
			{Name: "L1", Size: nsets * ls * assoc, LineSize: ls, Assoc: assoc, Policy: WriteThrough},
			{Name: "L2", Size: 1 << 14, LineSize: 64, Assoc: 2},
		}
	}
	ref := MustHierarchy(cfg(2)...)
	if err := ref.EnableMRC(); err != nil {
		t.Fatal(err)
	}
	for _, op := range trace {
		if op.write {
			ref.Store(op.addr, op.size)
		} else {
			ref.Load(op.addr, op.size)
		}
	}
	ref.Flush()
	for assoc := 1; assoc <= 12; assoc++ {
		fixed := replayFixed(t, cfg(assoc), trace)
		want := fixed.LevelStats(0)
		got := ref.MRC().Eval(0, int64(assoc))
		if got != want {
			t.Fatalf("write-through assoc %d: mrc %+v != fixed %+v", assoc, got, want)
		}
	}
}

// TestMRCPerSiteSumsToTotal: per-site stats must sum exactly to the
// level totals at every associativity (owner-pays attribution).
func TestMRCPerSiteSumsToTotal(t *testing.T) {
	r := rand.New(rand.NewSource(3))
	const nsets, ls = 4, 32
	h := MustHierarchy(CacheConfig{Name: "L1", Size: nsets * ls * 2, LineSize: ls, Assoc: 2})
	if err := h.EnableMRC(); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3000; i++ {
		site := uint32(r.Intn(5))
		addr := r.Int63n(1 << 12)
		if r.Intn(3) == 0 {
			h.StoreSite(addr, 8, site)
		} else {
			h.LoadSite(addr, 8, site)
		}
	}
	h.Flush()
	mrc := h.MRC()
	for assoc := int64(1); assoc <= 20; assoc++ {
		var sum Stats
		for _, site := range mrc.Sites(0) {
			s := mrc.EvalSite(0, site, assoc)
			sum.Reads += s.Reads
			sum.Writes += s.Writes
			sum.ReadMisses += s.ReadMisses
			sum.WriteMisses += s.WriteMisses
			sum.Writebacks += s.Writebacks
			sum.BytesIn += s.BytesIn
			sum.BytesOut += s.BytesOut
		}
		if total := mrc.Eval(0, assoc); sum != total {
			t.Fatalf("assoc %d: per-site sum %+v != total %+v", assoc, sum, total)
		}
	}
}

// TestMRCMonotone: misses, writebacks and traffic are non-increasing
// in capacity (the inclusion property and dirty-interval merging).
func TestMRCMonotone(t *testing.T) {
	r := rand.New(rand.NewSource(19))
	const nsets, ls = 8, 32
	h := MustHierarchy(CacheConfig{Name: "L1", Size: nsets * ls * 2, LineSize: ls, Assoc: 2})
	if err := h.EnableMRC(); err != nil {
		t.Fatal(err)
	}
	for _, op := range randomTrace(r, 5000, 1<<14) {
		if op.write {
			h.Store(op.addr, op.size)
		} else {
			h.Load(op.addr, op.size)
		}
	}
	h.Flush()
	mrc := h.MRC()
	prev := mrc.Eval(0, 1)
	for a := int64(2); a <= mrc.MaxAssoc(0)+2; a++ {
		cur := mrc.Eval(0, a)
		if cur.Misses() > prev.Misses() || cur.Writebacks > prev.Writebacks || cur.Traffic() > prev.Traffic() {
			t.Fatalf("assoc %d not monotone: %+v after %+v", a, cur, prev)
		}
		prev = cur
	}
	// Beyond MaxAssoc only compulsory misses remain.
	plateau := mrc.Eval(0, mrc.MaxAssoc(0))
	if far := mrc.Eval(0, mrc.MaxAssoc(0)+1000); far != plateau {
		t.Fatalf("curve not flat past MaxAssoc: %+v vs %+v", far, plateau)
	}
}

// TestMRCMultiLevelComposition: with a two-level hierarchy, the L2
// curve is recorded on L1's actual miss/writeback stream, so its
// evaluation at the configured L2 associativity must match the fixed
// simulation's L2 counters exactly.
func TestMRCMultiLevelComposition(t *testing.T) {
	r := rand.New(rand.NewSource(23))
	trace := randomTrace(r, 6000, 1<<14)
	cfgs := []CacheConfig{
		{Name: "L1", Size: 1 << 10, LineSize: 32, Assoc: 2},
		{Name: "L2", Size: 1 << 13, LineSize: 128, Assoc: 2},
	}
	h := MustHierarchy(cfgs...)
	if err := h.EnableMRC(); err != nil {
		t.Fatal(err)
	}
	for _, op := range trace {
		if op.write {
			h.Store(op.addr, op.size)
		} else {
			h.Load(op.addr, op.size)
		}
	}
	h.Flush()
	fixed := replayFixed(t, cfgs, trace)
	for lvl := 0; lvl < 2; lvl++ {
		want := fixed.LevelStats(lvl)
		got := h.MRC().Eval(lvl, int64(cfgs[lvl].Assoc))
		if got != want {
			t.Fatalf("level %d: mrc %+v != fixed %+v", lvl, got, want)
		}
	}
}

// TestMRCEvalCapacity checks the byte-capacity entry point and its
// geometry validation.
func TestMRCEvalCapacity(t *testing.T) {
	h := MustHierarchy(CacheConfig{Name: "L1", Size: 1 << 10, LineSize: 32, Assoc: 2})
	if err := h.EnableMRC(); err != nil {
		t.Fatal(err)
	}
	h.Load(0, 8)
	h.Flush()
	st, err := h.MRC().EvalCapacity(0, 1<<10)
	if err != nil {
		t.Fatal(err)
	}
	if st != h.LevelStats(0) {
		t.Fatalf("capacity eval %+v != fixed %+v", st, h.LevelStats(0))
	}
	if _, err := h.MRC().EvalCapacity(0, 100); err == nil {
		t.Fatal("expected error for capacity not a multiple of sets*line")
	}
}

// TestMRCRejectsNoWriteAllocate: the stack property does not hold for
// no-write-allocate levels, so EnableMRC must refuse.
func TestMRCRejectsNoWriteAllocate(t *testing.T) {
	h := MustHierarchy(CacheConfig{Name: "L1", Size: 1 << 10, LineSize: 32, Assoc: 2, Policy: WriteThrough, NoWriteAllocate: true})
	if err := h.EnableMRC(); err == nil {
		t.Fatal("expected EnableMRC to reject no-write-allocate level")
	}
}

// TestMRCEpochTimeline checks the phase timeline against a direct
// recomputation: per-epoch distinct-line working sets, first-touch
// counts and byte totals must be exact at every aggregation width.
func TestMRCEpochTimeline(t *testing.T) {
	r := rand.New(rand.NewSource(31))
	trace := randomTrace(r, 3000, 1<<13)
	h := MustHierarchy(CacheConfig{Name: "L1", Size: 1 << 10, LineSize: 64, Assoc: 2})
	if err := h.EnableMRC(); err != nil {
		t.Fatal(err)
	}
	for _, op := range trace {
		if op.write {
			h.Store(op.addr, op.size)
		} else {
			h.Load(op.addr, op.size)
		}
	}
	h.Flush()
	mrc := h.MRC()
	ls := mrc.MemLineSize()
	for _, n := range []int{1, 3, 8, 32} {
		eps := mrc.Epochs(n)
		if len(eps) == 0 {
			t.Fatalf("no epochs at n=%d", n)
		}
		var covered int64
		seenEver := map[int64]bool{}
		pos := 0
		for _, ep := range eps {
			covered += ep.Steps
			// Recompute distinct lines and first-touches directly from
			// the trace slice this epoch covers.
			distinct := map[int64]bool{}
			var wantNew, wantProc int64
			for i := int64(0); i < ep.Steps; i++ {
				op := trace[pos]
				pos++
				wantProc += int64(op.size)
				first := op.addr &^ (ls - 1)
				last := (op.addr + int64(op.size) - 1) &^ (ls - 1)
				for a := first; a <= last; a += ls {
					tag := a / ls
					distinct[tag] = true
					if !seenEver[tag] {
						seenEver[tag] = true
						wantNew++
					}
				}
			}
			if ep.WSLines != int64(len(distinct)) {
				t.Fatalf("n=%d epoch %d: WSLines %d != %d", n, ep.Index, ep.WSLines, len(distinct))
			}
			if ep.NewLines != wantNew {
				t.Fatalf("n=%d epoch %d: NewLines %d != %d", n, ep.Index, ep.NewLines, wantNew)
			}
			if ep.ProcBytes != wantProc {
				t.Fatalf("n=%d epoch %d: ProcBytes %d != %d", n, ep.Index, ep.ProcBytes, wantProc)
			}
		}
		if covered != int64(len(trace)) {
			t.Fatalf("n=%d: epochs cover %d accesses, trace has %d", n, covered, len(trace))
		}
		// Per-epoch memory bytes must sum to the memory channel total.
		var mem int64
		for _, ep := range eps {
			mem += ep.MemBytes
		}
		if mem != h.MemoryBytes() {
			t.Fatalf("n=%d: epoch mem bytes %d != MemoryBytes %d", n, mem, h.MemoryBytes())
		}
	}
}
