package core

import (
	"context"
	"fmt"

	"repro/internal/balance"
	"repro/internal/exec"
	"repro/internal/ir"
	"repro/internal/kernels"
	"repro/internal/report"
)

// MRCStudy sweeps the paper kernels through the one-pass reuse-distance
// recorder on every registered machine model, before and after the
// default pipeline: where does each kernel's capacity knee sit — the
// smallest fast memory at which its memory-channel demand meets the
// machine's balance — and how far left does the optimizer move it?
// The raw byte columns are unformatted so machine consumers (CI,
// EXPERIMENTS.md tooling) can parse them; a knee of -1 means the
// compulsory floor exceeds the machine's balance at any capacity.
func MRCStudy(cfg Config) (*report.Table, error) {
	t := &report.Table{
		Title:   "Capacity knees: smallest fast memory meeting machine balance (reuse-distance sweep)",
		Headers: []string{"machine", "kernel", "balance B/F", "floor orig", "floor opt", "knee orig B", "knee opt B", "shift"},
	}
	rows := []struct {
		name string
		p    *ir.Program
	}{
		{"convolution", kernels.Convolution(cfg.ConvN)},
		{"dmxpy", kernels.Dmxpy(cfg.DmxpyN)},
		{"mm-jki", kernels.MatmulJKI(cfg.MMN)},
		{"fig6", kernels.Fig6Original(cfg.Fig6N)},
		{"fig7", kernels.Fig7Original(cfg.Fig8N)},
	}
	for _, spec := range cfg.machines() {
		for _, k := range rows {
			before, err := balance.MeasureMRC(context.Background(), k.p, spec, exec.Limits{})
			if err != nil {
				return nil, fmt.Errorf("%s on %s: %w", k.name, spec.Name, err)
			}
			opt, _, err := Optimize(k.p)
			if err != nil {
				return nil, fmt.Errorf("optimize %s: %w", k.name, err)
			}
			after, err := balance.MeasureMRC(context.Background(), opt, spec, exec.Limits{})
			if err != nil {
				return nil, fmt.Errorf("%s (optimized) on %s: %w", k.name, spec.Name, err)
			}
			kb := before.MRC.Knee(spec.Name)
			ka := after.MRC.Knee(spec.Name)
			if kb == nil || ka == nil {
				return nil, fmt.Errorf("%s on %s: no knee against own machine", k.name, spec.Name)
			}
			t.AddRow(spec.Name, k.name,
				report.F(kb.MachineBalance, 3),
				report.F(kb.FloorBF, 3), report.F(ka.FloorBF, 3),
				fmt.Sprint(rawKnee(kb)), fmt.Sprint(rawKnee(ka)),
				kneeShift(kb, ka))
		}
	}
	t.AddNote("knee = smallest fast-memory capacity (machine's own sets x line, ways swept) with demand <= balance; -1 = never")
	t.AddNote("floor = compulsory bytes per flop once the working set fits; shift is optimized vs original knee")
	return t, nil
}

func rawKnee(k *balance.MRCKnee) int64 {
	if !k.Met {
		return -1
	}
	return k.KneeBytes
}

// kneeShift summarizes the optimizer's effect on one machine's knee.
func kneeShift(before, after *balance.MRCKnee) string {
	switch {
	case !before.Met && after.Met:
		return "now met"
	case before.Met && !after.Met:
		return "regressed"
	case !before.Met && !after.Met:
		return "-"
	case after.KneeBytes < before.KneeBytes:
		return "left " + report.Bytes(before.KneeBytes-after.KneeBytes)
	case after.KneeBytes > before.KneeBytes:
		return "right " + report.Bytes(after.KneeBytes-before.KneeBytes)
	default:
		return "="
	}
}
