package ir

// SubstVar replaces every occurrence of the variable old (as a *Var and
// as a loop induction variable) with the expression repl, mutating the
// statement list in place. When repl is itself a *Var, loop headers
// using old are renamed; otherwise loops over old are left untouched
// (their bodies shadow the name) and only free occurrences change.
func SubstVar(stmts []Stmt, old string, repl Expr) {
	substStmts(stmts, old, repl)
}

func substStmts(ss []Stmt, old string, repl Expr) {
	for _, s := range ss {
		switch s := s.(type) {
		case *For:
			s.Lo = substExpr(s.Lo, old, repl)
			s.Hi = substExpr(s.Hi, old, repl)
			if s.Var == old {
				if v, ok := repl.(*Var); ok {
					s.Var = v.Name
					substStmts(s.Body, old, repl)
				}
				// Non-variable replacement: the loop rebinds the name,
				// so inner occurrences refer to the loop variable.
				continue
			}
			substStmts(s.Body, old, repl)
		case *Assign:
			substRef(s.LHS, old, repl)
			s.RHS = substExpr(s.RHS, old, repl)
		case *If:
			s.Cond = substExpr(s.Cond, old, repl)
			substStmts(s.Then, old, repl)
			substStmts(s.Else, old, repl)
		case *ReadInput:
			substRef(s.Target, old, repl)
		case *Print:
			s.Arg = substExpr(s.Arg, old, repl)
		}
	}
}

func substRef(r *Ref, old string, repl Expr) {
	for i, ix := range r.Index {
		r.Index[i] = substExpr(ix, old, repl)
	}
}

func substExpr(e Expr, old string, repl Expr) Expr {
	switch e := e.(type) {
	case *Var:
		if e.Name == old {
			return CloneExpr(repl)
		}
		return e
	case *Ref:
		substRef(e, old, repl)
		return e
	case *Bin:
		e.L = substExpr(e.L, old, repl)
		e.R = substExpr(e.R, old, repl)
		return e
	case *Neg:
		e.X = substExpr(e.X, old, repl)
		return e
	case *Call:
		for i, a := range e.Args {
			e.Args[i] = substExpr(a, old, repl)
		}
		return e
	default:
		return e
	}
}

// UsesVar reports whether the statement list references the named
// variable (as a *Var, loop bound, or loop variable).
func UsesVar(stmts []Stmt, name string) bool {
	found := false
	var visitExpr func(Expr)
	visitExpr = func(e Expr) {
		switch e := e.(type) {
		case *Var:
			if e.Name == name {
				found = true
			}
		case *Ref:
			for _, ix := range e.Index {
				visitExpr(ix)
			}
		case *Bin:
			visitExpr(e.L)
			visitExpr(e.R)
		case *Neg:
			visitExpr(e.X)
		case *Call:
			for _, a := range e.Args {
				visitExpr(a)
			}
		}
	}
	var visit func([]Stmt)
	visit = func(ss []Stmt) {
		for _, s := range ss {
			switch s := s.(type) {
			case *For:
				if s.Var == name {
					found = true
				}
				visitExpr(s.Lo)
				visitExpr(s.Hi)
				visit(s.Body)
			case *Assign:
				if s.LHS.IsScalar() && s.LHS.Name == name {
					found = true
				}
				for _, ix := range s.LHS.Index {
					visitExpr(ix)
				}
				visitExpr(s.RHS)
			case *If:
				visitExpr(s.Cond)
				visit(s.Then)
				visit(s.Else)
			case *ReadInput:
				if s.Target.IsScalar() && s.Target.Name == name {
					found = true
				}
				for _, ix := range s.Target.Index {
					visitExpr(ix)
				}
			case *Print:
				visitExpr(s.Arg)
			}
		}
	}
	visit(stmts)
	return found
}
