package cache

import (
	"fmt"
	"sync"
	"testing"
)

func TestLRUEviction(t *testing.T) {
	c := New(2)
	c.Put("a", 1)
	c.Put("b", 2)
	c.Put("c", 3) // evicts a
	if _, ok := c.Get("a"); ok {
		t.Fatal("a survived eviction")
	}
	if v, ok := c.Get("b"); !ok || v.(int) != 2 {
		t.Fatalf("b = %v, %v", v, ok)
	}
	// b is now most recent; inserting d evicts c.
	c.Put("d", 4)
	if _, ok := c.Get("c"); ok {
		t.Fatal("c survived eviction despite being least recent")
	}
	if _, ok := c.Get("b"); !ok {
		t.Fatal("b evicted despite recent use")
	}
	st := c.Stats()
	if st.Evictions != 2 || st.Len != 2 || st.Capacity != 2 {
		t.Fatalf("stats = %+v", st)
	}
}

func TestPutRefreshesExisting(t *testing.T) {
	c := New(2)
	c.Put("a", 1)
	c.Put("a", 2)
	if c.Len() != 1 {
		t.Fatalf("len = %d, want 1", c.Len())
	}
	if v, _ := c.Get("a"); v.(int) != 2 {
		t.Fatalf("a = %v, want refreshed value 2", v)
	}
}

func TestHitMissCounters(t *testing.T) {
	c := New(4)
	c.Get("absent")
	c.Put("k", "v")
	c.Get("k")
	c.Get("k")
	st := c.Stats()
	if st.Hits != 2 || st.Misses != 1 {
		t.Fatalf("stats = %+v, want 2 hits 1 miss", st)
	}
	if r := st.HitRatio(); r < 0.66 || r > 0.67 {
		t.Fatalf("hit ratio = %v, want 2/3", r)
	}
}

func TestZeroCapacityStoresNothing(t *testing.T) {
	c := New(0)
	c.Put("a", 1)
	if _, ok := c.Get("a"); ok {
		t.Fatal("zero-capacity cache stored a value")
	}
}

func TestKeyDeterministicAndDistinct(t *testing.T) {
	type req struct {
		Source  string
		Machine string
		Scale   int
	}
	k1, err := Key(req{"prog", "origin", 1})
	if err != nil {
		t.Fatal(err)
	}
	k2, _ := Key(req{"prog", "origin", 1})
	if k1 != k2 {
		t.Fatalf("equal values produced different keys: %s vs %s", k1, k2)
	}
	k3, _ := Key(req{"prog", "origin", 2})
	if k1 == k3 {
		t.Fatal("different values produced the same key")
	}
	if len(k1) != 64 {
		t.Fatalf("key length = %d, want 64 hex chars", len(k1))
	}
}

func TestConcurrentAccess(t *testing.T) {
	c := New(32)
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 500; i++ {
				key := fmt.Sprintf("k%d", i%64)
				if i%3 == 0 {
					c.Put(key, i)
				} else {
					c.Get(key)
				}
			}
		}(g)
	}
	wg.Wait()
	if c.Len() > 32 {
		t.Fatalf("len = %d exceeds capacity", c.Len())
	}
}
