package perfwatch

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// synthetic builds a record with one kernel whose median optimize time
// is base nanoseconds and whose memory-channel balance is bpf.
func synthetic(medianNS int64, bpf float64) *Record {
	return &Record{
		Schema:  SchemaVersion,
		Config:  "quick",
		Machine: "Origin2000",
		Env:     CaptureEnv(),
		Kernels: []KernelResult{{
			Kernel:           "convolution",
			N:                1000,
			OptimizeNS:       []int64{medianNS - 1000, medianNS, medianNS + 1000},
			MedianOptimizeNS: medianNS,
			MeasureNS:        medianNS,
			Levels: []LevelBalance{
				{Channel: "Mem-L2", Measured: bpf, Model: 0.5, Ratio: bpf / 0.5},
			},
		}},
	}
}

func TestDetectNoFalsePositiveUnderThreshold(t *testing.T) {
	base := synthetic(100_000_000, 2.0)
	// +4% wall time, unchanged balance: inside the 20% / 1% thresholds.
	cur := synthetic(104_000_000, 2.0)
	findings, _, err := Detect(base, cur, Thresholds{})
	if err != nil {
		t.Fatal(err)
	}
	if len(findings) != 0 {
		t.Fatalf("false positive: %v", findings)
	}
}

func TestDetectNoisySeriesUnderThreshold(t *testing.T) {
	// Deterministic "noise": repeats scatter ±8% around the same
	// median; the detector compares medians only, so no finding.
	base := synthetic(100_000_000, 2.0)
	base.Kernels[0].OptimizeNS = []int64{92_000_000, 100_000_000, 108_000_000}
	cur := synthetic(101_000_000, 2.0)
	cur.Kernels[0].OptimizeNS = []int64{93_000_000, 101_000_000, 107_500_000}
	findings, _, err := Detect(base, cur, Thresholds{})
	if err != nil {
		t.Fatal(err)
	}
	if len(findings) != 0 {
		t.Fatalf("noisy-but-stable series flagged: %v", findings)
	}
}

func TestDetectTruePositiveSlowdown(t *testing.T) {
	base := synthetic(100_000_000, 2.0)
	cur := synthetic(130_000_000, 2.0) // +30% over a 20% threshold
	findings, _, err := Detect(base, cur, Thresholds{})
	if err != nil {
		t.Fatal(err)
	}
	var hit *Finding
	for i := range findings {
		if findings[i].Metric == "optimize_ns" {
			hit = &findings[i]
		}
	}
	if hit == nil {
		t.Fatalf("30%% slowdown not flagged: %v", findings)
	}
	if hit.Family != FamilyTime || hit.Delta < 0.29 || hit.Delta > 0.31 {
		t.Fatalf("bad finding: %+v", hit)
	}
	if row := hit.Row(); row.Change != "+30.0%" {
		t.Fatalf("row change = %q", row.Change)
	}
}

func TestDetectBalanceRegressionAndImprovement(t *testing.T) {
	base := synthetic(100_000_000, 2.0)
	worse := synthetic(100_000_000, 2.1) // +5% measured balance
	findings, _, err := Detect(base, worse, Thresholds{})
	if err != nil {
		t.Fatal(err)
	}
	found := false
	for _, f := range findings {
		if f.Metric == "balance:Mem-L2" && f.Family == FamilyBalance {
			found = true
		}
	}
	if !found {
		t.Fatalf("balance regression not flagged: %v", findings)
	}

	better := synthetic(100_000_000, 1.5)
	findings, notes, err := Detect(base, better, Thresholds{})
	if err != nil {
		t.Fatal(err)
	}
	for _, f := range findings {
		if strings.HasPrefix(f.Metric, "balance:") {
			t.Fatalf("improvement flagged as regression: %+v", f)
		}
	}
	improved := false
	for _, n := range notes {
		if strings.Contains(n, "improved") {
			improved = true
		}
	}
	if !improved {
		t.Fatalf("improvement not noted: %v", notes)
	}
}

func TestDetectTimeNoiseFloor(t *testing.T) {
	// +80% relative, but both sides under the 1ms absolute floor.
	base := synthetic(500_000, 2.0)
	cur := synthetic(900_000, 2.0)
	findings, _, err := Detect(base, cur, Thresholds{})
	if err != nil {
		t.Fatal(err)
	}
	if len(findings) != 0 {
		t.Fatalf("sub-floor time change flagged: %v", findings)
	}
}

func TestDetectConfigMismatch(t *testing.T) {
	base := synthetic(1, 1)
	cur := synthetic(1, 1)
	cur.Config = "default"
	if _, _, err := Detect(base, cur, Thresholds{}); err == nil {
		t.Fatal("config mismatch not rejected")
	}
}

func TestDetectEnvMismatchNoted(t *testing.T) {
	base := synthetic(100_000_000, 2.0)
	cur := synthetic(100_000_000, 2.0)
	cur.Env.GoVersion = "go0.0"
	_, notes, err := Detect(base, cur, Thresholds{})
	if err != nil {
		t.Fatal(err)
	}
	found := false
	for _, n := range notes {
		if strings.Contains(n, "environments differ") {
			found = true
		}
	}
	if !found {
		t.Fatalf("env mismatch not noted: %v", notes)
	}
}

func TestMedianIndex(t *testing.T) {
	ns := []int64{50, 10, 30}
	if i := medianIndex(ns); ns[i] != 30 {
		t.Fatalf("median of %v = %d", ns, ns[i])
	}
	ns = []int64{40, 10, 30, 20}
	if i := medianIndex(ns); ns[i] != 20 { // lower middle
		t.Fatalf("median of %v = %d", ns, ns[i])
	}
	if i := medianIndex([]int64{7}); i != 0 {
		t.Fatalf("single-sample median index = %d", i)
	}
}

func TestNextRecordPath(t *testing.T) {
	dir := t.TempDir()
	for _, name := range []string{"BENCH_1.json", "BENCH_3.json", "BENCH_x.json", "notes.txt"} {
		if err := os.WriteFile(filepath.Join(dir, name), []byte("{}"), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	got, err := NextRecordPath(dir)
	if err != nil {
		t.Fatal(err)
	}
	if want := filepath.Join(dir, "BENCH_4.json"); got != want {
		t.Fatalf("NextRecordPath = %q, want %q", got, want)
	}

	empty := t.TempDir()
	got, err = NextRecordPath(empty)
	if err != nil {
		t.Fatal(err)
	}
	if want := filepath.Join(empty, "BENCH_1.json"); got != want {
		t.Fatalf("NextRecordPath (empty dir) = %q, want %q", got, want)
	}
}
