package fusion

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestReduceKWayCutValidation(t *testing.T) {
	if _, err := ReduceKWayCut(KWayCutInstance{N: 3, Terminals: []int{0}}); err == nil {
		t.Fatal("single terminal accepted")
	}
	if _, err := ReduceKWayCut(KWayCutInstance{N: 3, Terminals: []int{0, 5}}); err == nil {
		t.Fatal("out-of-range terminal accepted")
	}
	if _, err := ReduceKWayCut(KWayCutInstance{N: 3, Terminals: []int{0, 0}}); err == nil {
		t.Fatal("duplicate terminal accepted")
	}
	if _, err := ReduceKWayCut(KWayCutInstance{N: 3, Edges: [][2]int{{1, 1}}, Terminals: []int{0, 2}}); err == nil {
		t.Fatal("self edge accepted")
	}
}

func TestKWayCutTriangle(t *testing.T) {
	// Triangle with all three nodes terminals: every edge must be cut.
	inst := KWayCutInstance{
		N:         3,
		Edges:     [][2]int{{0, 1}, {1, 2}, {0, 2}},
		Terminals: []int{0, 1, 2},
	}
	g, err := ReduceKWayCut(inst)
	if err != nil {
		t.Fatal(err)
	}
	_, cost, err := g.Optimal()
	if err != nil {
		t.Fatal(err)
	}
	if got := KWayCutWeight(inst, cost); got != 3 {
		t.Fatalf("cut weight = %d, want 3", got)
	}
	if BruteForceKWayCut(inst) != 3 {
		t.Fatal("brute force disagrees")
	}
}

func TestKWayCutPath(t *testing.T) {
	// Path 0-1-2-3 with terminals 0 and 3: min 2-way cut is one edge.
	inst := KWayCutInstance{
		N:         4,
		Edges:     [][2]int{{0, 1}, {1, 2}, {2, 3}},
		Terminals: []int{0, 3},
	}
	g, err := ReduceKWayCut(inst)
	if err != nil {
		t.Fatal(err)
	}
	_, cost, err := g.Optimal()
	if err != nil {
		t.Fatal(err)
	}
	if got := KWayCutWeight(inst, cost); got != 1 {
		t.Fatalf("cut weight = %d, want 1", got)
	}
}

// Property: on random small graphs, optimal fusion cost of the reduced
// instance equals |E| + min k-way cut — the equivalence at the heart of
// the paper's NP-completeness proof.
func TestReductionEquivalenceProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 4 + rng.Intn(3) // 4..6 nodes
		var edges [][2]int
		for u := 0; u < n; u++ {
			for v := u + 1; v < n; v++ {
				if rng.Intn(3) != 0 {
					edges = append(edges, [2]int{u, v})
				}
			}
		}
		k := 2 + rng.Intn(2) // 2..3 terminals
		perm := rng.Perm(n)
		inst := KWayCutInstance{N: n, Edges: edges, Terminals: perm[:k]}
		g, err := ReduceKWayCut(inst)
		if err != nil {
			return false
		}
		_, cost, err := g.Optimal()
		if err != nil {
			return false
		}
		return KWayCutWeight(inst, cost) == BruteForceKWayCut(inst)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

// The two-partition special case of the reduction is solved exactly by
// the polynomial min-cut (Figure 5), matching brute force.
func TestTwoTerminalReductionSolvedPolynomially(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 4 + rng.Intn(4)
		var edges [][2]int
		for u := 0; u < n; u++ {
			for v := u + 1; v < n; v++ {
				if rng.Intn(3) != 0 {
					edges = append(edges, [2]int{u, v})
				}
			}
		}
		// Terminals must not be directly adjacent for a finite cut to
		// be guaranteed... adjacency is fine: cutting that edge's array
		// costs 1. Always feasible.
		inst := KWayCutInstance{N: n, Edges: edges, Terminals: []int{0, n - 1}}
		g, err := ReduceKWayCut(inst)
		if err != nil {
			return false
		}
		parts, _, err := g.TwoPartition(0, n-1)
		if err != nil {
			return false
		}
		return KWayCutWeight(inst, g.Cost(parts)) == BruteForceKWayCut(inst)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}
