package bounds

import (
	"fmt"
	"math"
	"sort"
	"strings"

	"repro/internal/ir"
)

// Pebble is the static S-partitioning structure of a program: the loop
// nests whose dependence shape admits the Hong-Kung red-blue pebbling
// bound. Detection is conservative — a nest that does not match simply
// contributes nothing, and the compulsory floor still applies.
type Pebble struct {
	// Nests lists the matched nests.
	Nests []PebbleNest `json:"nests,omitempty"`
	// Scalars is the program's scalar count; scalars are
	// register-resident in the execution model, so they enlarge the
	// effective fast memory the bound must grant the adversary.
	Scalars int `json:"scalars"`
}

// PebbleNest is one matched nest: a perfect 3-deep affine loop nest
// whose array references project onto all three 2-element subsets of
// the loop variables — the matrix-multiply dependence shape to which
// the Loomis-Whitney S-partition argument applies.
type PebbleNest struct {
	Nest string `json:"nest"`
	// Vars are the three loop variables, outermost first.
	Vars []string `json:"vars"`
	// Points is the iteration-space size |I| (product of trip counts).
	Points int64 `json:"points"`
	// Refs are the witnessing references, one per 2-subset.
	Refs []string `json:"refs"`
}

// spare is the register allowance added to the effective capacity:
// expression temporaries and loop bookkeeping an execution could hold
// outside the modelled caches. Generous is sound (a larger S_e only
// weakens the bound).
const spare = 16

// Bound returns the pebbling lower bound at fast-memory capacity
// fastBytes, or ok=false when no nest matched.
//
// The argument (Hong & Kung 1981, dominator form): partition any
// complete schedule into phases of exactly S_e slow-memory transfers.
// During one phase at most 2·S_e distinct values are available (S_e
// resident + S_e loaded). Every multiply-add instance (i,k,j) consumes
// values indexed (i,k) and (k,j) and produces (i,j); by Loomis-Whitney,
// a phase with at most 2·S_e distinct values on each of the three
// projections covers at most (2·S_e)^{3/2} instances. Hence at least
// ⌈|I|/(2·S_e)^{3/2}⌉ phases are needed, and all but possibly the last
// perform S_e transfers:
//
//	Q ≥ S_e · (⌈|I|/(2·S_e)^{3/2}⌉ − 1) elements.
//
// For |I| = n³ this is asymptotically n³/(2√2·√S_e) — the Ω(n³/√S)
// form. When several nests match, the bound is the MAX over nests:
// restricting a full schedule to one nest's sub-CDAG yields a valid
// pebbling of that sub-CDAG with no more transfers, so each nest's
// bound individually applies to the whole program; their sum would not
// obviously be sound under interleaving and is not claimed.
func (pb *Pebble) Bound(fastBytes int64) (Bound, bool) {
	if pb == nil || len(pb.Nests) == 0 || fastBytes <= 0 {
		return Bound{}, false
	}
	// Effective capacity in elements: the caches plus the
	// register-resident scalars and a spare-temporaries allowance.
	se := fastBytes/ElemSize + int64(pb.Scalars) + spare
	var best Bound
	for _, n := range pb.Nests {
		phase := math.Pow(2*float64(se), 1.5)
		phases := int64(math.Ceil(float64(n.Points) / phase))
		if phases <= 1 {
			continue // iteration space fits one phase; no information
		}
		q := se * (phases - 1) * ElemSize
		if q > best.Bytes {
			best = Bound{
				Bytes: q,
				Kind:  KindPebbling,
				Assumptions: []string{
					fmt.Sprintf("S-partition of nest %s: |I|=%d multiply-add instances over (%s)",
						n.Nest, n.Points, strings.Join(n.Vars, ",")),
					fmt.Sprintf("effective fast memory %d elements (caches %d B + %d scalars + %d spare registers)",
						se, fastBytes, pb.Scalars, spare),
					"Loomis-Whitney: a phase with 2·S_e values covers ≤ (2·S_e)^(3/2) instances",
				},
			}
		}
	}
	return best, best.Bytes > 0
}

// ComputePebble statically scans p for nests matching the mm-like
// shape. It never fails: non-matching programs yield an empty Pebble.
func ComputePebble(p *ir.Program) *Pebble {
	pb := &Pebble{Scalars: len(p.Scalars)}
	for _, n := range p.Nests {
		if pn, ok := matchMMNest(p, n); ok {
			pb.Nests = append(pb.Nests, pn)
		}
	}
	return pb
}

// matchMMNest recognizes a perfect 3-deep affine nest with constant
// trip counts whose single assignment READS, for each 2-element subset
// of the loop variables, a reference indexed injectively by exactly
// that subset. Injectivity (each subscript carries at most one loop
// variable with coefficient ±1, each variable in one subscript)
// guarantees distinct index pairs name distinct elements, so the
// dominator set of a phase bounds each projection.
//
// The witnesses must be reads, not just the store target: with an
// accumulation (c[i,j] on both sides) the first instance of each (i,j)
// in a phase reads a version produced before the phase, so distinct
// (i,j) pairs are dominator-bounded; a write-only {i,j} ref is not
// (dead intermediate writes can share one slot), and an overwrite-style
// nest genuinely admits O(n²)-traffic schedules. Short-circuit
// operators (&&, ||) would make reads conditional, so their presence
// rejects the nest.
func matchMMNest(p *ir.Program, n *ir.Nest) (PebbleNest, bool) {
	// Peel exactly three perfectly nested loops.
	var loops []*ir.For
	body := n.Body
	for len(body) == 1 {
		f, ok := body[0].(*ir.For)
		if !ok {
			break
		}
		loops = append(loops, f)
		body = f.Body
	}
	if len(loops) != 3 || len(body) != 1 {
		return PebbleNest{}, false
	}
	asn, ok := body[0].(*ir.Assign)
	if !ok || hasShortCircuit(asn.RHS) {
		return PebbleNest{}, false
	}

	vars := make([]string, 3)
	points := int64(1)
	for i, f := range loops {
		vars[i] = f.Var
		trips, ok := tripCount(p, f)
		if !ok || trips <= 0 {
			return PebbleNest{}, false
		}
		if points > (1<<62)/trips {
			return PebbleNest{}, false // overflow guard
		}
		points *= trips
	}
	isVar := map[string]bool{vars[0]: true, vars[1]: true, vars[2]: true}
	if len(isVar) != 3 {
		return PebbleNest{}, false
	}

	// The three 2-subsets we need read witnesses for, keyed canonically.
	// A read of the written array only counts when its subscripts match
	// the store target exactly (the accumulation read): then the first
	// in-phase access of each element is a read of a pre-phase version,
	// keeping the projection dominator-bounded. A read of the written
	// array at a different index could observe in-phase-created versions,
	// which dead writes can produce without traffic.
	witness := map[string]string{}
	good := true
	ir.WalkRefs(body, p, func(r *ir.Ref, isWrite bool) {
		if !good {
			return
		}
		support, inj := refSupport(p, r, isVar)
		if !inj {
			good = false // a non-affine or non-injective ref defeats the argument
			return
		}
		if isWrite || len(support) != 2 {
			return
		}
		if r.Name == asn.LHS.Name && !sameIndex(p, r, asn.LHS) {
			return
		}
		key := support[0] + "," + support[1]
		if _, dup := witness[key]; !dup {
			witness[key] = refString(r)
		}
	})
	if !good || len(witness) != 3 {
		return PebbleNest{}, false
	}
	// All three pairs must be present (three distinct 2-subsets of a
	// 3-set is all of them, so three distinct keys suffice).
	keys := make([]string, 0, 3)
	for k := range witness {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	refs := make([]string, 0, 3)
	for _, k := range keys {
		refs = append(refs, witness[k])
	}
	return PebbleNest{Nest: n.Label, Vars: vars, Points: points, Refs: refs}, true
}

// tripCount returns the constant iteration count of a loop, requiring
// affine-constant bounds (after folding program constants) and a
// positive step.
func tripCount(p *ir.Program, f *ir.For) (int64, bool) {
	lo, ok := constAffine(f.Lo, p.Consts)
	if !ok {
		return 0, false
	}
	hi, ok := constAffine(f.Hi, p.Consts)
	if !ok {
		return 0, false
	}
	step := int64(f.StepOr1())
	if step <= 0 || hi < lo {
		return 0, false
	}
	return (hi-lo)/step + 1, true
}

func constAffine(e ir.Expr, consts map[string]int64) (int64, bool) {
	a, ok := ir.AffineOf(e, consts)
	if !ok || !a.IsConst() {
		return 0, false
	}
	return a.Const, true
}

// refSupport returns the sorted loop variables a reference's subscripts
// depend on, and whether the indexing is injective in those variables:
// every subscript affine, at most one loop variable per subscript with
// coefficient ±1, and no variable in two subscripts. Unknown (non-loop)
// variables in a subscript fail the match.
func refSupport(p *ir.Program, r *ir.Ref, isVar map[string]bool) ([]string, bool) {
	used := map[string]bool{}
	for _, ix := range r.Index {
		a, ok := ir.AffineOf(ix, p.Consts)
		if !ok {
			return nil, false
		}
		vs := a.Vars()
		if len(vs) > 1 {
			return nil, false
		}
		for _, v := range vs {
			if !isVar[v] {
				return nil, false
			}
			if c := a.Coeff(v); c != 1 && c != -1 {
				return nil, false
			}
			if used[v] {
				return nil, false
			}
			used[v] = true
		}
	}
	out := make([]string, 0, len(used))
	for v := range used {
		out = append(out, v)
	}
	sort.Strings(out)
	return out, true
}

// sameIndex reports whether two references have identical affine
// subscript forms.
func sameIndex(p *ir.Program, a, b *ir.Ref) bool {
	if len(a.Index) != len(b.Index) {
		return false
	}
	for i := range a.Index {
		fa, oka := ir.AffineOf(a.Index[i], p.Consts)
		fb, okb := ir.AffineOf(b.Index[i], p.Consts)
		if !oka || !okb || !fa.Equal(fb) {
			return false
		}
	}
	return true
}

// hasShortCircuit reports whether an expression contains a
// conditionally-evaluated operand (&&, || short-circuit in the
// executors), which would make a witness read conditional.
func hasShortCircuit(e ir.Expr) bool {
	switch e := e.(type) {
	case *ir.Bin:
		if e.Op == ir.And || e.Op == ir.Or {
			return true
		}
		return hasShortCircuit(e.L) || hasShortCircuit(e.R)
	case *ir.Neg:
		return hasShortCircuit(e.X)
	case *ir.Call:
		for _, a := range e.Args {
			if hasShortCircuit(a) {
				return true
			}
		}
		return false
	case *ir.Ref:
		for _, ix := range e.Index {
			if hasShortCircuit(ix) {
				return true
			}
		}
		return false
	default:
		return false
	}
}

func refString(r *ir.Ref) string {
	parts := make([]string, len(r.Index))
	for i, ix := range r.Index {
		if a, ok := ir.AffineOf(ix, nil); ok {
			parts[i] = a.String()
		} else {
			parts[i] = "?"
		}
	}
	return r.Name + "[" + strings.Join(parts, ",") + "]"
}
