package transform

import (
	"fmt"
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/exec"
	"repro/internal/ir"
	"repro/internal/sim"
	"repro/internal/verify"
)

// This file fuzzes the whole compiler pipeline: random loop-chain
// programs are pushed through Optimize(All()) and the transformed
// program must compute the same printed results as the original. The
// interpreter is the oracle; any divergence is a miscompilation.

// randProgram generates a random but valid producer/consumer loop chain
// over nArr arrays, with guarded stencil reads, scalar temporaries,
// reductions and prints.
func randProgram(rng *rand.Rand, id int) *ir.Program {
	n := 16 + rng.Intn(48)
	p := ir.NewProgram(fmt.Sprintf("fuzz%d", id))
	p.DeclareConst("N", int64(n))
	nArr := 2 + rng.Intn(4)
	names := make([]string, nArr)
	for i := range names {
		names[i] = fmt.Sprintf("a%d", i)
		p.DeclareArray(names[i], n)
	}
	p.DeclareScalar("acc")

	iv := ir.V("i")
	hi := ir.SubE(ir.V("N"), ir.N(1))

	// randExpr builds an expression reading from the given arrays.
	var randExpr func(depth int, readable []string, allowPrev bool) ir.Expr
	randExpr = func(depth int, readable []string, allowPrev bool) ir.Expr {
		if depth <= 0 || rng.Intn(3) == 0 {
			switch rng.Intn(3) {
			case 0:
				return ir.N(float64(rng.Intn(9)+1) / 4)
			case 1:
				return iv
			default:
				if len(readable) == 0 {
					return ir.N(1)
				}
				arr := readable[rng.Intn(len(readable))]
				return ir.At(arr, ir.V("i"))
			}
		}
		switch rng.Intn(4) {
		case 0:
			return ir.AddE(randExpr(depth-1, readable, allowPrev), randExpr(depth-1, readable, allowPrev))
		case 1:
			return ir.SubE(randExpr(depth-1, readable, allowPrev), randExpr(depth-1, readable, allowPrev))
		case 2:
			return ir.MulE(randExpr(depth-1, readable, allowPrev), ir.N(float64(rng.Intn(3)+1)/2))
		default:
			return ir.CallE("abs", randExpr(depth-1, readable, allowPrev))
		}
	}

	// Build a chain: each loop writes one array from earlier arrays.
	written := []string{}
	nLoops := 2 + rng.Intn(4)
	for li := 0; li < nLoops && li < nArr; li++ {
		target := names[li]
		readable := append([]string(nil), written...)
		var body []ir.Stmt
		switch {
		case li == 0 || len(readable) == 0:
			body = append(body, ir.Input(ir.At(target, ir.V("i"))))
		case rng.Intn(3) == 0 && len(readable) > 0:
			// Guarded stencil consuming the previous array at i-1.
			src := readable[rng.Intn(len(readable))]
			body = append(body, ir.WhenElse(ir.CmpE(ir.Ge, iv, ir.N(1)),
				[]ir.Stmt{ir.Let(ir.At(target, ir.V("i")),
					ir.AddE(ir.At(src, ir.V("i")), ir.At(src, ir.SubE(ir.V("i"), ir.N(1)))))},
				[]ir.Stmt{ir.Let(ir.At(target, ir.V("i")), ir.At(src, ir.V("i")))}))
		default:
			body = append(body, ir.Let(ir.At(target, ir.V("i")), randExpr(2, readable, false)))
		}
		p.AddNest(fmt.Sprintf("L%d", li),
			ir.Loop("i", ir.N(0), hi, body...))
		written = append(written, target)
	}
	// Final reduction over the last written array.
	last := written[len(written)-1]
	p.AddNest("Reduce",
		ir.Let(ir.S("acc"), ir.N(0)),
		ir.Loop("i", ir.N(0), hi, ir.Acc(ir.S("acc"), ir.At(last, ir.V("i")))),
		ir.Show(ir.V("acc")))
	return p
}

func TestPipelineFuzzEquivalence(t *testing.T) {
	count := 0
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		p := randProgram(rng, count)
		count++
		if err := p.Validate(); err != nil {
			t.Logf("generator produced invalid program: %v", err)
			return false
		}
		orig, err := exec.Run(p, nil)
		if err != nil {
			t.Logf("original failed: %v\n%s", err, p)
			return false
		}
		q, _, err := Optimize(p, All())
		if err != nil {
			t.Logf("pipeline failed: %v\n%s", err, p)
			return false
		}
		opt, err := exec.Run(q, nil)
		if err != nil {
			t.Logf("optimized failed: %v\n%s", err, q)
			return false
		}
		if len(orig.Prints) != len(opt.Prints) {
			t.Logf("print count: %d vs %d", len(orig.Prints), len(opt.Prints))
			return false
		}
		for i := range orig.Prints {
			a, b := orig.Prints[i], opt.Prints[i]
			if math.Abs(a-b) > 1e-9*(1+math.Abs(a)) {
				t.Logf("print %d: %v vs %v\n--- original ---\n%s--- optimized ---\n%s",
					i, a, b, p, q)
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 120}); err != nil {
		t.Fatal(err)
	}
}

// TestFusionOnlyFuzzEquivalence restricts the pipeline to fusion so a
// failure isolates the fusion pass.
func TestFusionOnlyFuzzEquivalence(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		p := randProgram(rng, 0)
		orig, err := exec.Run(p, nil)
		if err != nil {
			return false
		}
		q, _, err := Optimize(p, FusionOnly())
		if err != nil {
			return false
		}
		opt, err := exec.Run(q, nil)
		if err != nil {
			t.Logf("fused program failed: %v\n%s", err, q)
			return false
		}
		for i := range orig.Prints {
			if math.Abs(orig.Prints[i]-opt.Prints[i]) > 1e-9*(1+math.Abs(orig.Prints[i])) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 120}); err != nil {
		t.Fatal(err)
	}
}

// TestPipelineFuzzTrafficNeverWorse checks a weaker but universal
// property: the optimized program never moves more memory than the
// original (the pipeline only applies profitable transformations).
func TestPipelineFuzzTrafficNeverWorse(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		p := randProgram(rng, 1)
		q, _, err := Optimize(p, All())
		if err != nil {
			return false
		}
		return memBytesOf(p) >= memBytesOf(q)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

func memBytesOf(p *ir.Program) int64 {
	h := tinyHierarchyForFuzz()
	if _, err := exec.Run(p, h); err != nil {
		return -1
	}
	return h.MemoryBytes()
}

// tinyHierarchyForFuzz builds a small hierarchy for traffic checks.
func tinyHierarchyForFuzz() *sim.Hierarchy {
	return sim.MustHierarchy(
		sim.CacheConfig{Name: "L1", Size: 512, LineSize: 32, Assoc: 2},
		sim.CacheConfig{Name: "L2", Size: 4096, LineSize: 64, Assoc: 2},
	)
}

// FuzzOptimize is the native fuzz target behind the CI fuzz step: a
// seed drives the random-program generator, and the verified pipeline
// must optimize cleanly — no errors, no rolled-back passes, and a
// result that is structurally valid and observably equivalent to the
// original. A skip here means a pass produced a divergent or invalid
// program that the verifier had to contain, which is a compiler bug.
func FuzzOptimize(f *testing.F) {
	for s := int64(0); s < 8; s++ {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, seed int64) {
		rng := rand.New(rand.NewSource(seed))
		p := randProgram(rng, 0)
		want, err := exec.Run(p, nil)
		if err != nil {
			t.Skipf("generator produced a non-running program: %v", err)
		}
		q, out, err := OptimizeVerified(p, Config{Options: All(), Verify: verify.ModeDifferential})
		if err != nil {
			t.Fatalf("pipeline failed: %v\n%s", err, p)
		}
		for _, pe := range out.Skipped {
			t.Errorf("pass rolled back: %v\n%s", pe, p)
		}
		if err := verify.Structural(q); err != nil {
			t.Fatalf("optimized program structurally invalid: %v\n%s", err, q)
		}
		got, err := exec.Run(q, nil)
		if err != nil {
			t.Fatalf("optimized program failed: %v\n%s", err, q)
		}
		if err := verify.CompareResults(want, got, 0); err != nil {
			t.Fatalf("%v\n--- original ---\n%s--- optimized ---\n%s", err, p, q)
		}
		// The analysis cache must be invisible: rerunning with
		// memoization disabled has to produce the same program and the
		// same action log. A divergence means a pass over-declared its
		// preserved analyses and consumed a stale result.
		q2, out2, err := OptimizeVerified(p, Config{
			Options: All(), Verify: verify.ModeDifferential, NoAnalysisCache: true,
		})
		if err != nil {
			t.Fatalf("uncached pipeline failed: %v\n%s", err, p)
		}
		if q.String() != q2.String() {
			t.Fatalf("cached and uncached pipelines disagree:\n--- cached ---\n%s--- uncached ---\n%s", q, q2)
		}
		if fmt.Sprint(out.Actions) != fmt.Sprint(out2.Actions) {
			t.Fatalf("cached and uncached action logs disagree:\n%v\n%v", out.Actions, out2.Actions)
		}
	})
}
