package telemetry

import (
	"strings"
	"sync"
	"testing"
	"time"
)

func TestCounterAndGaugeText(t *testing.T) {
	r := NewRegistry()
	c := r.NewCounter("requests_total", "Total requests.")
	g := r.NewGauge("workers_busy", "Busy workers.")
	c.Inc()
	c.Add(2)
	g.Set(5)
	g.Add(-2)

	var b strings.Builder
	if err := r.WriteText(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, want := range []string{
		"# HELP requests_total Total requests.",
		"# TYPE requests_total counter",
		"requests_total 3",
		"# TYPE workers_busy gauge",
		"workers_busy 3",
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("output missing %q:\n%s", want, out)
		}
	}
}

func TestCounterVecLabels(t *testing.T) {
	r := NewRegistry()
	cv := r.NewCounterVec("http_requests_total", "Requests by endpoint and code.", "endpoint", "code")
	cv.With("/v1/analyze", "200").Add(4)
	cv.With("/v1/analyze", "400").Inc()
	cv.With("/v1/optimize", "200").Inc()

	var b strings.Builder
	r.WriteText(&b)
	out := b.String()
	for _, want := range []string{
		`http_requests_total{endpoint="/v1/analyze",code="200"} 4`,
		`http_requests_total{endpoint="/v1/analyze",code="400"} 1`,
		`http_requests_total{endpoint="/v1/optimize",code="200"} 1`,
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("output missing %q:\n%s", want, out)
		}
	}
	// Same label values return the same counter.
	if cv.With("/v1/analyze", "200").Value() != 4 {
		t.Fatal("With did not return the existing child")
	}
}

func TestHistogramBuckets(t *testing.T) {
	r := NewRegistry()
	h := r.NewHistogram("latency_seconds", "Latency.", []float64{0.01, 0.1, 1})
	for _, v := range []float64{0.005, 0.05, 0.5, 5} {
		h.Observe(v)
	}
	var b strings.Builder
	r.WriteText(&b)
	out := b.String()
	for _, want := range []string{
		`latency_seconds_bucket{le="0.01"} 1`,
		`latency_seconds_bucket{le="0.1"} 2`,
		`latency_seconds_bucket{le="1"} 3`,
		`latency_seconds_bucket{le="+Inf"} 4`,
		`latency_seconds_count 4`,
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("output missing %q:\n%s", want, out)
		}
	}
	if h.Count() != 4 {
		t.Fatalf("count = %d", h.Count())
	}
}

// TestHistogramBucketBoundary pins the inclusive-upper-bound contract:
// an observation exactly equal to a bucket's le lands in that bucket,
// not the next one.
func TestHistogramBucketBoundary(t *testing.T) {
	r := NewRegistry()
	h := r.NewHistogram("b_seconds", "b", []float64{0.5, 1, 2})
	// One value strictly below the lowest bound, one exactly on each
	// bound, one above the highest. All chosen exactly representable in
	// binary so the rendered sum is exact.
	for _, v := range []float64{0.25, 0.5, 1, 2, 4} {
		h.Observe(v)
	}
	var b strings.Builder
	r.WriteText(&b)
	out := b.String()
	for _, want := range []string{
		`b_seconds_bucket{le="0.5"} 2`,
		`b_seconds_bucket{le="1"} 3`,
		`b_seconds_bucket{le="2"} 4`,
		`b_seconds_bucket{le="+Inf"} 5`,
		`b_seconds_sum 7.75`,
		`b_seconds_count 5`,
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("output missing %q:\n%s", want, out)
		}
	}
}

// TestHistogramConcurrentObserveAndRender hammers one histogram from
// eight goroutines while the registry renders concurrently; under
// -race this checks Observe/WriteText synchronization, and the final
// exposition checks no observation was lost or misbucketed.
func TestHistogramConcurrentObserveAndRender(t *testing.T) {
	r := NewRegistry()
	h := r.NewHistogram("c_seconds", "c", []float64{0.001, 0.01, 0.1, 1})
	vals := []float64{0.0005, 0.005, 0.05, 0.5, 5}
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 500; i++ {
				h.Observe(vals[(g+i)%len(vals)])
			}
		}(g)
	}
	done := make(chan struct{})
	go func() {
		defer close(done)
		for i := 0; i < 50; i++ {
			var b strings.Builder
			r.WriteText(&b)
		}
	}()
	wg.Wait()
	<-done

	if h.Count() != 4000 {
		t.Fatalf("count = %d, want 4000", h.Count())
	}
	// 500 consecutive indices cover each of the 5 values 100 times, so
	// every value was observed exactly 800 times.
	var b strings.Builder
	r.WriteText(&b)
	out := b.String()
	for _, want := range []string{
		`c_seconds_bucket{le="0.001"} 800`,
		`c_seconds_bucket{le="0.01"} 1600`,
		`c_seconds_bucket{le="0.1"} 2400`,
		`c_seconds_bucket{le="1"} 3200`,
		`c_seconds_bucket{le="+Inf"} 4000`,
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("output missing %q:\n%s", want, out)
		}
	}
}

func TestLabelEscaping(t *testing.T) {
	r := NewRegistry()
	cv := r.NewCounterVec("weird_total", "Escaping.", "v")
	cv.With(`a"b\c` + "\n").Inc()
	var b strings.Builder
	r.WriteText(&b)
	if !strings.Contains(b.String(), `weird_total{v="a\"b\\c\n"} 1`) {
		t.Fatalf("escaping wrong:\n%s", b.String())
	}
}

func TestConcurrentMetricUpdates(t *testing.T) {
	r := NewRegistry()
	c := r.NewCounter("c_total", "c")
	hv := r.NewHistogramVec("h_seconds", "h", []float64{1}, "stage")
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 1000; i++ {
				c.Inc()
				hv.With("parse").Observe(0.5)
			}
		}()
	}
	wg.Wait()
	if c.Value() != 8000 {
		t.Fatalf("counter = %v, want 8000", c.Value())
	}
	if hv.With("parse").Count() != 8000 {
		t.Fatalf("histogram count = %d, want 8000", hv.With("parse").Count())
	}
}

func TestLoggerJSONLines(t *testing.T) {
	var b strings.Builder
	l := NewLogger(&b)
	l.now = func() time.Time { return time.Date(2000, 1, 2, 3, 4, 5, 0, time.UTC) }
	l.Log(map[string]any{"path": "/v1/analyze", "status": 200, "dur_ms": 1.5, "cache": "hit"})
	got := b.String()
	want := `{"ts":"2000-01-02T03:04:05Z","cache":"hit","dur_ms":1.5,"path":"/v1/analyze","status":200}` + "\n"
	if got != want {
		t.Fatalf("log line:\n got %q\nwant %q", got, want)
	}
	// A nil logger discards without panicking.
	var nl *Logger
	nl.Log(map[string]any{"x": 1})
}
