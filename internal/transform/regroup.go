package transform

import (
	"fmt"
	"strings"

	"repro/internal/ir"
)

// Inter-array data regrouping, the layout transformation of Ding's
// dissertation discussed in the paper's related-work section: arrays
// that are always accessed together are interleaved into one array so
// that a single cache line carries one element of each — turning k
// parallel streams into one stream, improving spatial locality and
// eliminating the cross-stream conflict misses that plague low-
// associativity caches (the Figure 3 footnote's 3w6r outlier).

// RegroupArrays merges the named arrays (which must share identical
// extents) into a single array with one extra leading dimension of
// size len(names). Arrays are column-major, so the new leading
// subscript varies fastest: former a_k[i] becomes grp[k, i], and
// elements of the group members sit adjacently in memory. Every
// reference in the whole program is rewritten; the transformation is a
// pure layout change and never alters semantics.
func RegroupArrays(p *ir.Program, names []string) (*ir.Program, error) {
	if len(names) < 2 {
		return nil, fmt.Errorf("transform: regrouping needs at least two arrays")
	}
	var dims []int
	seen := map[string]int{}
	for k, n := range names {
		if _, dup := seen[n]; dup {
			return nil, fmt.Errorf("transform: duplicate array %q in group", n)
		}
		seen[n] = k
		a := p.ArrayByName(n)
		if a == nil {
			return nil, fmt.Errorf("transform: unknown array %q", n)
		}
		if dims == nil {
			dims = a.Dims
		} else if !equalDims(dims, a.Dims) {
			return nil, fmt.Errorf("transform: array %q extents %v differ from %v", n, a.Dims, dims)
		}
	}
	out := p.Clone()
	grp := freshName(out, strings.Join(names, "_"))
	newDims := append([]int{len(names)}, dims...)
	out.Arrays = append(out.Arrays, &ir.Array{Name: grp, Dims: newDims})

	rewriteRef := func(r *ir.Ref) {
		k, ok := seen[r.Name]
		if !ok || r.IsScalar() {
			return
		}
		r.Name = grp
		r.Index = append([]ir.Expr{ir.N(float64(k))}, r.Index...)
	}
	for _, n := range out.Nests {
		rewriteRefsInPlace(n.Body, rewriteRef)
	}
	for _, n := range names {
		removeArrayDecl(out, n)
	}
	if err := out.Validate(); err != nil {
		return nil, fmt.Errorf("transform: regrouping produced invalid program: %w", err)
	}
	return out, nil
}

// RegroupCandidates proposes groups for automatic regrouping: arrays
// with identical extents that are accessed in exactly the same set of
// nests (the dissertation's "always accessed together" criterion).
// Groups of size one are omitted.
func RegroupCandidates(p *ir.Program) [][]string {
	type key struct {
		dims  string
		nests string
	}
	groups := map[key][]string{}
	for _, a := range p.Arrays {
		var used []string
		for i, n := range p.Nests {
			for _, name := range n.ArraysAccessed(p) {
				if name == a.Name {
					used = append(used, fmt.Sprint(i))
				}
			}
		}
		if len(used) == 0 {
			continue
		}
		k := key{dims: fmt.Sprint(a.Dims), nests: strings.Join(used, ",")}
		groups[k] = append(groups[k], a.Name)
	}
	var out [][]string
	// Deterministic: iterate arrays in declaration order, emit each
	// group once when its first member is seen.
	emitted := map[string]bool{}
	for _, a := range p.Arrays {
		for _, g := range groups {
			if len(g) < 2 || g[0] != a.Name || emitted[g[0]] {
				continue
			}
			cp := append([]string(nil), g...)
			out = append(out, cp)
			emitted[g[0]] = true
		}
	}
	return out
}

// RegroupAuto applies RegroupArrays to every candidate group.
func RegroupAuto(p *ir.Program) (*ir.Program, []Action, error) {
	cur := p.Clone()
	var log []Action
	for _, g := range RegroupCandidates(cur) {
		next, err := RegroupArrays(cur, g)
		if err != nil {
			continue
		}
		log = append(log, Action{Pass: "regroup", Array: strings.Join(g, ","),
			Note: fmt.Sprintf("%d arrays interleaved", len(g))})
		cur = next
	}
	return cur, log, nil
}

func equalDims(a, b []int) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// rewriteRefsInPlace applies fn to every array reference (read and
// write) in the statement list, mutating in place.
func rewriteRefsInPlace(ss []ir.Stmt, fn func(*ir.Ref)) {
	var visitExpr func(e ir.Expr)
	visitExpr = func(e ir.Expr) {
		switch e := e.(type) {
		case *ir.Ref:
			if !e.IsScalar() {
				fn(e)
			}
			for _, ix := range e.Index {
				visitExpr(ix)
			}
		case *ir.Bin:
			visitExpr(e.L)
			visitExpr(e.R)
		case *ir.Neg:
			visitExpr(e.X)
		case *ir.Call:
			for _, a := range e.Args {
				visitExpr(a)
			}
		}
	}
	var visit func([]ir.Stmt)
	visit = func(ss []ir.Stmt) {
		for _, s := range ss {
			switch s := s.(type) {
			case *ir.For:
				visitExpr(s.Lo)
				visitExpr(s.Hi)
				visit(s.Body)
			case *ir.Assign:
				if !s.LHS.IsScalar() {
					fn(s.LHS)
				}
				for _, ix := range s.LHS.Index {
					visitExpr(ix)
				}
				visitExpr(s.RHS)
			case *ir.If:
				visitExpr(s.Cond)
				visit(s.Then)
				visit(s.Else)
			case *ir.ReadInput:
				if !s.Target.IsScalar() {
					fn(s.Target)
				}
				for _, ix := range s.Target.Index {
					visitExpr(ix)
				}
			case *ir.Print:
				visitExpr(s.Arg)
			}
		}
	}
	visit(ss)
}
