package service

import (
	"encoding/json"
	"io"
	"net/http"
	"strings"
	"testing"

	"repro/internal/faults"
)

// TestAnalyzeMRC: an "mrc": true analyze returns the reuse-distance
// block — monotone per-level curves, per-machine knees, a phase
// timeline — participates in the cache under its own key, and feeds
// the knee gauge and the dashboard panel.
func TestAnalyzeMRC(t *testing.T) {
	s, ts := newTestServer(t, Config{})
	body := map[string]any{"kernel": "dmxpy", "n": 96, "mrc": true}

	resp, b := postJSON(t, ts.URL+"/v1/analyze", body)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d: %s", resp.StatusCode, b)
	}
	var ar AnalyzeResponse
	if err := json.Unmarshal(b, &ar); err != nil {
		t.Fatal(err)
	}
	if ar.MRC == nil {
		t.Fatalf("mrc:true response missing the mrc block: %s", b)
	}
	if len(ar.MRC.Levels) == 0 || len(ar.MRC.Knees) == 0 || len(ar.MRC.Timeline) == 0 {
		t.Fatalf("mrc block incomplete: %d levels, %d knees, %d epochs",
			len(ar.MRC.Levels), len(ar.MRC.Knees), len(ar.MRC.Timeline))
	}
	for _, lv := range ar.MRC.Levels {
		if !lv.MatchesFixed {
			t.Fatalf("level %s: curve does not reproduce the fixed simulation", lv.Name)
		}
		for i := 1; i < len(lv.Points); i++ {
			if lv.Points[i].CapacityBytes <= lv.Points[i-1].CapacityBytes {
				t.Fatalf("level %s: capacities not ascending at %d", lv.Name, i)
			}
			if lv.Points[i].Misses > lv.Points[i-1].Misses {
				t.Fatalf("level %s: misses not monotone non-increasing at %d", lv.Name, i)
			}
		}
	}

	// The knee gauge is set for the measurement's machine.
	if got := s.wsKnee.With("dmxpy", ar.MRC.Machine).Value(); got == 0 {
		t.Fatalf("bwserved_ws_knee_bytes{dmxpy,%s} unset after an mrc run", ar.MRC.Machine)
	}

	// Identical request: cache hit with the block intact.
	resp, b = postJSON(t, ts.URL+"/v1/analyze", body)
	if resp.Header.Get("X-Cache") != "hit" {
		t.Fatalf("second identical mrc request missed the cache: %s", b)
	}
	var hit AnalyzeResponse
	json.Unmarshal(b, &hit)
	if !hit.Cached || hit.MRC == nil {
		t.Fatalf("cached mrc response lost the block: %s", b)
	}

	// The mrc flag is part of the content address: the mrc-free variant
	// of the same program must miss.
	resp, b = postJSON(t, ts.URL+"/v1/analyze", map[string]any{"kernel": "dmxpy", "n": 96})
	if resp.Header.Get("X-Cache") != "miss" {
		t.Fatal("mrc:false request hit the mrc:true cache entry")
	}
	var plain AnalyzeResponse
	json.Unmarshal(b, &plain)
	if plain.MRC != nil {
		t.Fatal("mrc:false response carries an mrc block")
	}

	// The dashboard renders the panel.
	dresp, err := http.Get(ts.URL + "/debug/dash")
	if err != nil {
		t.Fatal(err)
	}
	defer dresp.Body.Close()
	raw, err := io.ReadAll(dresp.Body)
	if err != nil {
		t.Fatal(err)
	}
	html := string(raw)
	if !strings.Contains(html, "miss-ratio curves and phase timelines") {
		t.Fatal("dashboard missing the MRC panel after an mrc run")
	}
	if !strings.Contains(html, "bwserved_ws_knee_bytes") {
		t.Fatal("dashboard MRC panel missing the gauge pointer")
	}
}

// TestOptimizeMRC: an "mrc": true optimize returns the before/after
// overlay, proving the response carries both curves.
func TestOptimizeMRC(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	resp, b := postJSON(t, ts.URL+"/v1/optimize", map[string]any{
		"kernel": "fig7", "n": 512, "mrc": true,
	})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d: %s", resp.StatusCode, b)
	}
	var or OptimizeResponse
	if err := json.Unmarshal(b, &or); err != nil {
		t.Fatal(err)
	}
	if or.MRCBefore == nil || or.MRCAfter == nil {
		t.Fatalf("mrc:true optimize missing before/after blocks: %s", b)
	}
	// Fusion must not raise fig7's compulsory memory-channel floor, and
	// the optimized demand at full capacity must drop (the knee-shift
	// the issue's CI job asserts).
	bl, al := or.MRCBefore.MemLevel(), or.MRCAfter.MemLevel()
	if bl == nil || al == nil {
		t.Fatal("mrc blocks missing the memory-facing level")
	}
	bFloor := bl.Points[len(bl.Points)-1].TrafficBytes
	aFloor := al.Points[len(al.Points)-1].TrafficBytes
	if aFloor > bFloor {
		t.Fatalf("optimizer raised the traffic floor: %d -> %d bytes", bFloor, aFloor)
	}
}

// TestMRCDegradationShed: under a deadline that cannot afford full
// service, the mrc sweep is shed — the response is degraded, omits the
// block, and is never cached under the full mrc:true address.
func TestMRCDegradationShed(t *testing.T) {
	_, ts := newTestServer(t, Config{
		Workers: 1,
		Faults:  faults.MustParse("analysis.slow:once,delay=400ms"),
	})
	// Prime the cost estimate with one slow full-service run.
	resp, b := postJSON(t, ts.URL+"/v1/optimize", map[string]any{
		"kernel": "sec21", "n": 1024, "verify": "differential",
	})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("priming run: status %d: %s", resp.StatusCode, b)
	}

	// 250ms deadline vs ≥400ms estimate: rung 1+, mrc shed.
	body := map[string]any{"kernel": "dmxpy", "n": 96, "mrc": true, "timeout_ms": 250}
	resp, b = postJSON(t, ts.URL+"/v1/analyze", body)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("degraded run: status %d: %s", resp.StatusCode, b)
	}
	var ar AnalyzeResponse
	if err := json.Unmarshal(b, &ar); err != nil {
		t.Fatal(err)
	}
	if ar.Degraded == nil {
		t.Fatalf("response not degraded under a deadline below the cost estimate: %s", b)
	}
	if ar.MRC != nil {
		t.Fatal("degraded response still carries the mrc block")
	}

	// Cache-poisoning check: a full-deadline mrc request for the same
	// program must not be served the shed result.
	resp, b = postJSON(t, ts.URL+"/v1/analyze", map[string]any{"kernel": "dmxpy", "n": 96, "mrc": true})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("follow-up full run: status %d: %s", resp.StatusCode, b)
	}
	var full AnalyzeResponse
	json.Unmarshal(b, &full)
	if full.Cached {
		t.Fatal("shed result was cached under the full mrc request's key")
	}
	if full.MRC == nil {
		t.Fatalf("full-deadline mrc request lost the block: %s", b)
	}
}

// TestMRCTimeout504: a deadline too small for the sweep itself yields
// a clean 504, not a hang or a 500 (the recorder observes context
// cancellation through the engine's polling).
func TestMRCTimeout504(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	resp, b := postJSON(t, ts.URL+"/v1/analyze", map[string]any{
		"kernel": "matmul", "n": 384, "mrc": true, "timeout_ms": 1,
	})
	switch resp.StatusCode {
	case http.StatusGatewayTimeout, http.StatusServiceUnavailable:
		// 504 when the pipeline was cut off mid-run; 503 when admission
		// control shed it first. Both are clean refusals.
	default:
		t.Fatalf("status %d, want 504 or 503: %s", resp.StatusCode, b)
	}
}
