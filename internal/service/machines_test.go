package service

import (
	"encoding/json"
	"io"
	"math"
	"net/http"
	"strings"
	"testing"

	"repro/internal/machine"
)

func getJSON(t *testing.T, url string, out any) *http.Response {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
		t.Fatalf("decode %s: %v", url, err)
	}
	return resp
}

// TestMachinesEndpoint exercises GET /v1/machines end to end: every
// registered machine comes back with its declared balance and — because
// the handler characterizes on demand — a measured balance whose memory
// channel agrees with the declaration within the 10% protocol budget.
func TestMachinesEndpoint(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	var body struct {
		Machines []MachineInfo `json:"machines"`
	}
	resp := getJSON(t, ts.URL+"/v1/machines", &body)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d", resp.StatusCode)
	}
	if len(body.Machines) < 6 {
		t.Fatalf("got %d machines, want >= 6", len(body.Machines))
	}
	for _, m := range body.Machines {
		if m.Name == "" || m.Description == "" || m.Era == "" {
			t.Errorf("machine missing metadata: %+v", m)
		}
		if len(m.DeclaredBalance) != len(m.ChannelNames) || len(m.ChannelBW) != len(m.ChannelNames) {
			t.Errorf("%s: balance/BW/name lengths disagree", m.Name)
		}
		if len(m.MeasuredBalance) != len(m.DeclaredBalance) {
			t.Fatalf("%s: measured balance missing or wrong length (%d vs %d)",
				m.Name, len(m.MeasuredBalance), len(m.DeclaredBalance))
		}
		last := len(m.DeclaredBalance) - 1
		decl, meas := m.DeclaredBalance[last], m.MeasuredBalance[last]
		if err := math.Abs(meas-decl) / decl; err > 0.10 {
			t.Errorf("%s: measured memory balance %.3f vs declared %.3f (err %.1f%%)",
				m.Name, meas, decl, err*100)
		}
		if m.Characterization == nil || len(m.Characterization.Points) < 8 {
			t.Errorf("%s: characterization sweep missing or too short", m.Name)
		}
	}
}

// TestAnalyzeMachinesFanout sends one program against several machines
// and checks the per-machine result rows: one per distinct machine, in
// request order, each with its own balance report and a sound bound.
func TestAnalyzeMachinesFanout(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	resp, body := postJSON(t, ts.URL+"/v1/analyze", map[string]any{
		"kernel": "sec21", "n": 4096,
		"machines": []string{"origin", "a64fx", "embedded"},
	})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d: %s", resp.StatusCode, body)
	}
	var ar AnalyzeResponse
	if err := json.Unmarshal(body, &ar); err != nil {
		t.Fatal(err)
	}
	want := []string{"Origin2000", "A64FX", "EmbeddedM7"}
	if len(ar.Machines) != len(want) {
		t.Fatalf("got %d machine rows, want %d: %s", len(ar.Machines), len(want), body)
	}
	for i, row := range ar.Machines {
		if row.Machine != want[i] {
			t.Errorf("row %d machine %q, want %q", i, row.Machine, want[i])
		}
		if row.Balance == nil || row.Balance.Flops <= 0 {
			t.Errorf("%s: balance missing", row.Machine)
		}
		if row.Bounds == nil || row.Bounds.Gap < 1.0 {
			t.Errorf("%s: bounds missing or unsound gap: %+v", row.Machine, row.Bounds)
		}
	}
	// The top-level balance block stays the first machine's, so fan-out
	// responses remain drop-in compatible with single-machine clients.
	if ar.Balance == nil || ar.Balance.Machine != "Origin2000" {
		t.Fatalf("top-level balance should be the first machine's: %+v", ar.Balance)
	}
}

// TestAnalyzeMachinesDedupe: aliases and repeats collapse to one row.
func TestAnalyzeMachinesDedupe(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	resp, body := postJSON(t, ts.URL+"/v1/analyze", map[string]any{
		"kernel": "conv", "n": 1024,
		"machines": []string{"origin", "o2k", "Origin2000"},
	})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d: %s", resp.StatusCode, body)
	}
	var ar AnalyzeResponse
	if err := json.Unmarshal(body, &ar); err != nil {
		t.Fatal(err)
	}
	if len(ar.Machines) != 1 || ar.Machines[0].Machine != "Origin2000" {
		t.Fatalf("aliases should dedupe to one row: %s", body)
	}
}

func TestAnalyzeMachinesRejects(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	cases := []map[string]any{
		{"kernel": "conv", "machine": "origin", "machines": []string{"exemplar"}},
		{"kernel": "conv", "machines": make17("origin")},
		{"kernel": "conv", "machines": []string{"cray"}},
	}
	for i, req := range cases {
		resp, body := postJSON(t, ts.URL+"/v1/analyze", req)
		if resp.StatusCode != http.StatusBadRequest {
			t.Errorf("case %d: status %d, want 400: %s", i, resp.StatusCode, body)
		}
	}
}

func make17(name string) []string {
	out := make([]string, 17)
	for i := range out {
		out[i] = name
	}
	return out
}

// TestScaledMachineCacheKey checks the result-cache address survives
// the registry round trip: an alias at the same scale is a cache hit
// (Scaled stamps the factor into the spec name, so the key is exact),
// while a different scale is a miss.
func TestScaledMachineCacheKey(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	req := func(name string, scale int) AnalyzeResponse {
		resp, body := postJSON(t, ts.URL+"/v1/analyze", map[string]any{
			"kernel": "conv", "n": 1024, "machine": name, "scale": scale,
		})
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("status %d: %s", resp.StatusCode, body)
		}
		var ar AnalyzeResponse
		if err := json.Unmarshal(body, &ar); err != nil {
			t.Fatal(err)
		}
		return ar
	}
	if ar := req("origin", 4); ar.Cached {
		t.Fatal("first request claims cached")
	}
	if ar := req("o2k", 4); !ar.Cached {
		t.Fatal("alias at same scale should hit the cache")
	}
	if ar := req("origin", 8); ar.Cached {
		t.Fatal("different scale must not hit the cache")
	}
}

// TestKernelsPerMachineBounds: GET /v1/kernels reports one lower-bound
// row per registered machine, and the legacy single bound stays the
// Origin2000 row.
func TestKernelsPerMachineBounds(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	var body struct {
		Kernels []KernelInfo `json:"kernels"`
	}
	resp := getJSON(t, ts.URL+"/v1/kernels", &body)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d", resp.StatusCode)
	}
	names := machine.Names()
	var checked bool
	for _, k := range body.Kernels {
		if k.Name != "conv" {
			continue
		}
		checked = true
		if len(k.LowerBounds) != len(names) {
			t.Fatalf("conv: %d bound rows, want one per machine (%d): %+v",
				len(k.LowerBounds), len(names), k.LowerBounds)
		}
		var machines []string
		for _, b := range k.LowerBounds {
			if b.BoundBytes <= 0 || b.FastBytes <= 0 {
				t.Errorf("conv on %s: degenerate bound %+v", b.Machine, b)
			}
			machines = append(machines, b.Machine)
		}
		joined := strings.Join(machines, ",")
		for _, n := range names {
			if !strings.Contains(joined, n) {
				t.Errorf("conv: no bound row for %s (have %s)", n, joined)
			}
		}
		if k.LowerBound == nil || k.LowerBound.Machine != "Origin2000" {
			t.Errorf("conv: legacy lower_bound should be the Origin2000 row: %+v", k.LowerBound)
		}
	}
	if !checked {
		t.Fatal("kernel conv not listed")
	}
}

// TestDashMachinesTable: the live dashboard carries the machines table,
// and once a characterization exists the measured column fills in.
func TestDashMachinesTable(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	resp, err := http.Get(ts.URL + "/debug/dash")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	raw, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	html := string(raw)
	for _, name := range machine.Names() {
		if !strings.Contains(html, name) {
			t.Errorf("dashboard missing machine row %q", name)
		}
	}
	if !strings.Contains(html, "measured B/F") {
		t.Error("dashboard missing measured-balance column")
	}
}
