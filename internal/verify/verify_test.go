package verify

import (
	"strings"
	"testing"

	"repro/internal/ir"
	"repro/internal/kernels"
)

func TestParseModeRoundTrip(t *testing.T) {
	for _, m := range []Mode{ModeOff, ModeStructural, ModeDifferential} {
		got, err := ParseMode(m.String())
		if err != nil {
			t.Fatalf("ParseMode(%q): %v", m.String(), err)
		}
		if got != m {
			t.Fatalf("ParseMode(%q) = %v, want %v", m.String(), got, m)
		}
	}
	aliases := map[string]Mode{"": ModeOff, "none": ModeOff, "struct": ModeStructural, "DIFF": ModeDifferential}
	for s, want := range aliases {
		got, err := ParseMode(s)
		if err != nil || got != want {
			t.Fatalf("ParseMode(%q) = %v, %v; want %v", s, got, err, want)
		}
	}
	if _, err := ParseMode("bogus"); err == nil {
		t.Fatal("ParseMode accepted bogus mode")
	}
}

// oob builds for i = 0, n-1 { a[i+1] = i }: subscript range [1,n],
// one past the extent.
func oob() *ir.Program {
	p := ir.NewProgram("oob").DeclareConst("n", 8)
	p.DeclareArray("a", 8)
	p.AddNest("l1",
		ir.Loop("i", ir.N(0), ir.SubE(ir.V("n"), ir.N(1)),
			ir.Let(ir.At("a", ir.AddE(ir.V("i"), ir.N(1))), ir.V("i"))))
	return p
}

func TestStructuralCatchesStaticOOB(t *testing.T) {
	err := Structural(oob())
	if err == nil {
		t.Fatal("Structural accepted a statically out-of-bounds subscript")
	}
	if !strings.Contains(err.Error(), "outside extent") {
		t.Fatalf("unexpected error: %v", err)
	}
}

func TestStructuralGuardRefinement(t *testing.T) {
	// for i = 0, n-1 { if i >= 1 { a[i-1] = i } }: the raw range of
	// i-1 is [-1,n-2], but the guard restricts it to [0,n-2].
	p := ir.NewProgram("guarded").DeclareConst("n", 8)
	p.DeclareArray("a", 8)
	p.AddNest("l1",
		ir.Loop("i", ir.N(0), ir.SubE(ir.V("n"), ir.N(1)),
			ir.When(ir.CmpE(ir.Ge, ir.V("i"), ir.N(1)),
				ir.Let(ir.At("a", ir.SubE(ir.V("i"), ir.N(1))), ir.V("i")))))
	if err := Structural(p); err != nil {
		t.Fatalf("guard-refined stencil rejected: %v", err)
	}

	// The else-branch of i <= n-2 must also refine: there i == n-1,
	// so a[i] is fine but a[i+1] must be flagged.
	q := ir.NewProgram("guarded2").DeclareConst("n", 8)
	q.DeclareArray("a", 8)
	q.AddNest("l1",
		ir.Loop("i", ir.N(0), ir.SubE(ir.V("n"), ir.N(1)),
			ir.WhenElse(ir.CmpE(ir.Le, ir.V("i"), ir.SubE(ir.V("n"), ir.N(2))),
				[]ir.Stmt{ir.Let(ir.At("a", ir.AddE(ir.V("i"), ir.N(1))), ir.V("i"))},
				[]ir.Stmt{ir.Let(ir.At("a", ir.V("i")), ir.V("i"))})))
	if err := Structural(q); err != nil {
		t.Fatalf("then-branch a[i+1] under i <= n-2 rejected: %v", err)
	}

	r := ir.NewProgram("guarded3").DeclareConst("n", 8)
	r.DeclareArray("a", 8)
	r.AddNest("l1",
		ir.Loop("i", ir.N(0), ir.SubE(ir.V("n"), ir.N(1)),
			ir.WhenElse(ir.CmpE(ir.Le, ir.V("i"), ir.SubE(ir.V("n"), ir.N(2))),
				[]ir.Stmt{ir.Let(ir.At("a", ir.V("i")), ir.V("i"))},
				[]ir.Stmt{ir.Let(ir.At("a", ir.AddE(ir.V("i"), ir.N(1))), ir.V("i"))})))
	if err := Structural(r); err == nil {
		t.Fatal("else-branch a[i+1] with i == n-1 accepted")
	}
}

func TestStructuralSkipsEmptyLoops(t *testing.T) {
	// for i = 5, 4 { a[99] = 0 } never executes; the checker must not
	// flag its body.
	p := ir.NewProgram("empty")
	p.DeclareArray("a", 8)
	p.AddNest("l1",
		ir.Loop("i", ir.N(5), ir.N(4),
			ir.Let(ir.At("a", ir.N(99)), ir.N(0))))
	if err := Structural(p); err != nil {
		t.Fatalf("statically empty loop body flagged: %v", err)
	}
}

func TestStructuralAcceptsAllKernels(t *testing.T) {
	for _, p := range testKernels(t) {
		if err := Structural(p); err != nil {
			t.Errorf("kernel %s rejected: %v", p.Name, err)
		}
	}
}

// testKernels builds every kernel in the package at small sizes.
func testKernels(t *testing.T) []*ir.Program {
	t.Helper()
	ps := []*ir.Program{
		kernels.Sec21Write(64), kernels.Sec21Read(64), kernels.Sec21Pair(64),
		kernels.Fig7Original(24), kernels.Fig8Workload(16),
		kernels.Fig6Original(24), kernels.Fig6Fused(24), kernels.Fig6ShrunkPeeled(24),
		kernels.Convolution(32), kernels.Dmxpy(12), kernels.MatmulJKI(8),
		kernels.MustMatmulBlocked(8, 4), kernels.MustFFT(16),
		kernels.SP(8), kernels.Sweep3D(6, 4),
	}
	for _, name := range kernels.StrideKernelNames {
		ps = append(ps, kernels.MustStrideKernel(name, 64))
	}
	return ps
}

func TestDifferentialEquivalentPair(t *testing.T) {
	// Fig6Original and Fig6Fused are the paper's worked example of a
	// semantics-preserving rewrite.
	if err := Differential(kernels.Fig6Original(24), kernels.Fig6Fused(24), 0); err != nil {
		t.Fatalf("equivalent pair diverged: %v", err)
	}
}

func TestDifferentialDetectsDivergence(t *testing.T) {
	mk := func(scale float64) *ir.Program {
		p := ir.NewProgram("div").DeclareConst("n", 8)
		p.DeclareArray("a", 8)
		p.AddNest("l1",
			ir.Loop("i", ir.N(0), ir.SubE(ir.V("n"), ir.N(1)),
				ir.Let(ir.At("a", ir.V("i")), ir.MulE(ir.V("i"), ir.N(scale)))),
			ir.Loop("i", ir.N(0), ir.SubE(ir.V("n"), ir.N(1)),
				ir.Show(ir.At("a", ir.V("i")))))
		return p
	}
	err := Differential(mk(1), mk(2), 0)
	if err == nil {
		t.Fatal("divergent pair accepted")
	}
	d, ok := err.(*Divergence)
	if !ok {
		t.Fatalf("want *Divergence, got %T: %v", err, err)
	}
	// a[0] = 0 in both programs; the first diverging print is index 1.
	if d.Kind != "print" || d.Index != 1 {
		t.Fatalf("divergence = %+v, want first diverging print at index 1", d)
	}
}

func TestCompareResultsScalarAndCount(t *testing.T) {
	p := ir.NewProgram("p")
	p.DeclareScalar("s")
	p.AddNest("l1", ir.Let(ir.S("s"), ir.N(1)), ir.Show(ir.N(1)))
	q := ir.NewProgram("q")
	q.DeclareScalar("s")
	q.AddNest("l1", ir.Let(ir.S("s"), ir.N(2)), ir.Show(ir.N(1)))
	err := Differential(p, q, 0)
	d, ok := err.(*Divergence)
	if !ok || d.Kind != "scalar" || d.Name != "s" {
		t.Fatalf("want scalar divergence on s, got %v", err)
	}

	r := ir.NewProgram("r")
	r.AddNest("l1", ir.Show(ir.N(1)), ir.Show(ir.N(2)))
	err = Differential(p, r, 0)
	d, ok = err.(*Divergence)
	if !ok || d.Kind != "print-count" {
		t.Fatalf("want print-count divergence, got %v", err)
	}
}
