package kernels

import "repro/internal/fusion"

// Figure4Graph builds the paper's Figure 4 fusion-graph instance: six
// loops; array hyper-edges A{1,2,3,5}, D{1,2,3,4}, E{1,2,3,4},
// F{1,2,3,4}, B{4,6}, C{4,6} (sum is scalar data carried in registers
// and therefore not a hyper-edge); a fusion-preventing constraint
// between loops 5 and 6; and the dependence loop5 → loop6.
//
// Without fusion the six loops access 20 arrays in total. The optimal
// bandwidth-minimal fusion leaves loop 5 alone and fuses the other five
// loops, loading 7 arrays; the classical edge-weighted objective
// instead fuses loops 1–5 and loads 8.
func Figure4Graph() *fusion.Graph {
	g := fusion.NewAbstract(6, "loop1", "loop2", "loop3", "loop4", "loop5", "loop6")
	l := func(i int) int { return i - 1 }
	must := func(err error) {
		if err != nil {
			panic(err) // static, known-good instance
		}
	}
	must(g.AddArray("A", l(1), l(2), l(3), l(5)))
	must(g.AddArray("D", l(1), l(2), l(3), l(4)))
	must(g.AddArray("E", l(1), l(2), l(3), l(4)))
	must(g.AddArray("F", l(1), l(2), l(3), l(4)))
	must(g.AddArray("B", l(4), l(6)))
	must(g.AddArray("C", l(4), l(6)))
	must(g.AddPreventing(l(5), l(6)))
	must(g.AddDep(l(5), l(6)))
	return g
}
