package kernels

import (
	"math"
	"testing"

	"repro/internal/balance"
	"repro/internal/exec"
	"repro/internal/machine"
)

func TestSec21PairMatchesComponents(t *testing.T) {
	w, r, pair := Sec21Write(64), Sec21Read(64), Sec21Pair(64)
	if err := w.Validate(); err != nil {
		t.Fatal(err)
	}
	if err := r.Validate(); err != nil {
		t.Fatal(err)
	}
	res, err := exec.Run(pair, nil)
	if err != nil {
		t.Fatal(err)
	}
	// sum over a[i]+0.4 with zero-initialized a = 64*0.4.
	if math.Abs(res.Scalars["sum"]-64*0.4) > 1e-9 {
		t.Fatalf("sum = %v", res.Scalars["sum"])
	}
}

func TestSec21WriteIsTwiceRead(t *testing.T) {
	spec := machine.Origin2000()
	rw, err := balance.Measure(Sec21Write(200000), spec)
	if err != nil {
		t.Fatal(err)
	}
	rr, err := balance.Measure(Sec21Read(200000), spec)
	if err != nil {
		t.Fatal(err)
	}
	if ratio := rw.Time.Total / rr.Time.Total; math.Abs(ratio-2) > 0.1 {
		t.Fatalf("write/read = %.2f, want ~2", ratio)
	}
}

func TestAllStrideKernelsRun(t *testing.T) {
	for _, name := range StrideKernelNames {
		p, err := StrideKernel(name, 512)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if _, err := exec.Run(p, nil); err != nil {
			t.Fatalf("%s: %v", name, err)
		}
	}
	if _, err := StrideKernel("9w9r", 8); err == nil {
		t.Fatal("unknown kernel accepted")
	}
}

func TestStrideKernelReadWriteCounts(t *testing.T) {
	// Verify each kernel's name matches its actual access pattern.
	wants := map[string][2]int{ // name -> {writes, reads}
		"1w1r": {1, 1}, "2w2r": {2, 2}, "3w3r": {3, 3}, "1w2r": {1, 2},
		"1w3r": {1, 3}, "1w4r": {1, 4}, "2w3r": {2, 3}, "2w5r": {2, 5},
		"3w6r": {3, 6}, "0w1r": {0, 1}, "0w2r": {0, 2}, "0w3r": {0, 3},
	}
	for name, want := range wants {
		p := MustStrideKernel(name, 64)
		writes, reads := map[string]bool{}, map[string]bool{}
		for _, n := range p.Nests {
			for _, a := range n.ArraysAccessed(p) {
				if n.WritesArray(p, a) {
					writes[a] = true
				}
				if n.ReadsArray(p, a) {
					reads[a] = true
				}
			}
		}
		if len(writes) != want[0] || len(reads) != want[1] {
			t.Fatalf("%s: %dw%dr measured", name, len(writes), len(reads))
		}
	}
}

func TestConvolutionBalanceShape(t *testing.T) {
	r, err := balance.Measure(Convolution(200000), machine.Origin2000())
	if err != nil {
		t.Fatal(err)
	}
	// 3 loads + 1 store per 5 flops: register balance 6.4 B/flop.
	if math.Abs(r.ProgramBalance[0]-6.4) > 0.2 {
		t.Fatalf("register balance = %.2f, want ~6.4", r.ProgramBalance[0])
	}
	// Memory balance near 4.8 (the paper measured 5.2): strongly
	// memory-bound on Origin2000's 0.8 B/flop.
	if r.ProgramBalance[2] < 4 || r.ProgramBalance[2] > 6 {
		t.Fatalf("memory balance = %.2f, want ~5", r.ProgramBalance[2])
	}
	if r.Bottleneck != "Mem-L2" {
		t.Fatalf("bottleneck = %s", r.Bottleneck)
	}
}

func TestDmxpyMemoryBound(t *testing.T) {
	r, err := balance.Measure(Dmxpy(400), machine.Origin2000())
	if err != nil {
		t.Fatal(err)
	}
	// The matrix is touched once per element with no reuse: memory
	// balance stays several bytes per flop, far above the 0.8 supply.
	if r.ProgramBalance[2] < 3 {
		t.Fatalf("memory balance = %.2f", r.ProgramBalance[2])
	}
	if r.Ratios[2] < 4 {
		t.Fatalf("memory ratio = %.2f", r.Ratios[2])
	}
}

func TestMatmulBlockingCollapsesMemoryBalance(t *testing.T) {
	// Scaled machine: cache capacities shrunk so a 128x128 matrix is
	// out-of-cache, as the paper's 2000-scale problems were on the real
	// Origin2000 (balance depends only on the footprint/capacity ratio).
	spec := machine.Origin2000()
	spec.Caches[0].Size = 4 << 10
	spec.Caches[1].Size = 64 << 10
	jki, err := balance.Measure(MatmulJKI(128), spec)
	if err != nil {
		t.Fatal(err)
	}
	blk, err := balance.Measure(MustMatmulBlocked(128, 16), spec)
	if err != nil {
		t.Fatal(err)
	}
	// The paper's headline compiler result: -O3 blocking drops memory
	// balance from 5.9 to 0.04 B/flop. At this scale we check the
	// shape: a large multiple.
	if jki.ProgramBalance[2] < 1 {
		t.Fatalf("jki memory balance = %.3f, expected memory-hungry", jki.ProgramBalance[2])
	}
	if blk.ProgramBalance[2] > jki.ProgramBalance[2]/6 {
		t.Fatalf("blocking reduced balance only %.3f -> %.3f",
			jki.ProgramBalance[2], blk.ProgramBalance[2])
	}
	// Same results: both compute C = A*B over zero-filled inputs; a
	// stronger check runs them with filled arrays.
	if blk2, err := MatmulBlocked(100, 32); err == nil || blk2 != nil {
		t.Fatal("non-dividing block size accepted")
	}
}

func TestMatmulBlockedEquivalentToJKI(t *testing.T) {
	a := FillArrays(MatmulJKI(16))
	b := FillArrays(MustMatmulBlocked(16, 8))
	ra, err := exec.Run(a, nil)
	if err != nil {
		t.Fatal(err)
	}
	rb, err := exec.Run(b, nil)
	if err != nil {
		t.Fatal(err)
	}
	ca, cb := ra.Array("c"), rb.Array("c")
	for i := range ca {
		if math.Abs(ca[i]-cb[i]) > 1e-9*(1+math.Abs(ca[i])) {
			t.Fatalf("c[%d]: %v vs %v", i, ca[i], cb[i])
		}
	}
}

func TestFFTRunsAndIsMemoryModerate(t *testing.T) {
	p := MustFFT(1 << 12)
	r, err := balance.Measure(p, machine.Origin2000())
	if err != nil {
		t.Fatal(err)
	}
	if r.Flops == 0 {
		t.Fatal("no flops counted")
	}
	if _, err := FFT(100); err == nil {
		t.Fatal("non-power-of-two accepted")
	}
}

func TestFFTCorrectOnImpulse(t *testing.T) {
	// The input stream is pseudo-random, so validate structure instead:
	// FFT of N samples conserves sum(re) at bin 0 only in special
	// cases; here we check Parseval-ish stability by running twice and
	// comparing (determinism) plus a small hand case below.
	p := MustFFT(8)
	r1, err := exec.Run(p, nil)
	if err != nil {
		t.Fatal(err)
	}
	r2, err := exec.Run(p, nil)
	if err != nil {
		t.Fatal(err)
	}
	if r1.Prints[0] != r2.Prints[0] {
		t.Fatal("FFT not deterministic")
	}
	// DC bin: re[0] after the FFT must equal the sum of the (real)
	// inputs. Recover the same deterministic input stream with a
	// trivial reader program and compare.
	re := r1.Array("re")
	reader := mustParse(`
program reader
const N = 8
array x[N]
scalar s
loop R { for i = 0, N-1 { read x[i]
  s = s + x[i] } }
`)
	rr, err := exec.Run(reader, nil)
	if err != nil {
		t.Fatal(err)
	}
	sum := rr.Scalars["s"]
	if math.Abs(re[0]-sum) > 1e-9 {
		t.Fatalf("DC bin %v != input sum %v", re[0], sum)
	}
}

func TestSPRoutinesRunAndCombine(t *testing.T) {
	for _, name := range SPRoutineNames {
		p, err := SPRoutine(name, 24)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if _, err := exec.Run(p, nil); err != nil {
			t.Fatalf("%s: %v", name, err)
		}
	}
	if _, err := SPRoutine("warp", 8); err == nil {
		t.Fatal("unknown routine accepted")
	}
	full := SP(24)
	if _, err := exec.Run(full, nil); err != nil {
		t.Fatal(err)
	}
	if len(full.Nests) < 7 {
		t.Fatalf("SP has %d nests", len(full.Nests))
	}
}

func TestSPMemoryBound(t *testing.T) {
	r, err := balance.Measure(FillArrays(SP(96)), machine.Origin2000())
	if err != nil {
		t.Fatal(err)
	}
	// The paper: SP demands 4.9 B/flop of memory bandwidth against a
	// 0.8 supply (ratio 6.1, CPU bound 16%).
	if r.Ratios[2] < 2 {
		t.Fatalf("SP memory ratio = %.2f, expected memory-bound", r.Ratios[2])
	}
	if r.CPUUtilizationBound > 0.5 {
		t.Fatalf("CPU bound = %.2f", r.CPUUtilizationBound)
	}
}

func TestSweep3DRunsAndIsMemoryBound(t *testing.T) {
	p := Sweep3DCheck(64, 4)
	res, err := exec.Run(p, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Prints) != 1 {
		t.Fatal("checksum missing")
	}
	r, err := balance.Measure(FillArrays(Sweep3D(96, 4)), machine.Origin2000())
	if err != nil {
		t.Fatal(err)
	}
	if r.Ratios[2] < 1 {
		t.Fatalf("sweep3d memory ratio = %.2f", r.Ratios[2])
	}
}

func TestFig6VariantsEquivalent(t *testing.T) {
	const n = 24
	a, err := exec.Run(Fig6Original(n), nil)
	if err != nil {
		t.Fatal(err)
	}
	b, err := exec.Run(Fig6Fused(n), nil)
	if err != nil {
		t.Fatal(err)
	}
	c, err := exec.Run(Fig6ShrunkPeeled(n), nil)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(a.Prints[0]-b.Prints[0]) > 1e-9*(1+math.Abs(a.Prints[0])) {
		t.Fatalf("fused differs: %v vs %v", a.Prints[0], b.Prints[0])
	}
	if math.Abs(a.Prints[0]-c.Prints[0]) > 1e-9*(1+math.Abs(a.Prints[0])) {
		t.Fatalf("shrunk/peeled differs: %v vs %v", a.Prints[0], c.Prints[0])
	}
}

func TestFig6StorageCollapse(t *testing.T) {
	// (a) uses two (N+1)^2 arrays; (c) uses two (N+1) arrays + scalars.
	a, c := Fig6Original(64), Fig6ShrunkPeeled(64)
	if ratio := float64(a.TotalArrayBytes()) / float64(c.TotalArrayBytes()); ratio < 30 {
		t.Fatalf("storage reduction only %.1fx", ratio)
	}
}

func TestFig6TrafficDropsAcrossVariants(t *testing.T) {
	const n = 96
	spec := machine.Origin2000()
	// Shrink caches so the n x n arrays overflow them (scaled model of
	// the paper's out-of-cache regime).
	spec.Caches[0].Size = 2048
	spec.Caches[1].Size = 16384
	ra, err := balance.Measure(Fig6Original(n), spec)
	if err != nil {
		t.Fatal(err)
	}
	rb, err := balance.Measure(Fig6Fused(n), spec)
	if err != nil {
		t.Fatal(err)
	}
	rc, err := balance.Measure(Fig6ShrunkPeeled(n), spec)
	if err != nil {
		t.Fatal(err)
	}
	if !(rb.MemoryBytes < ra.MemoryBytes) {
		t.Fatalf("fusion did not cut traffic: %d -> %d", ra.MemoryBytes, rb.MemoryBytes)
	}
	if !(rc.MemoryBytes < rb.MemoryBytes/4) {
		t.Fatalf("shrink/peel did not collapse traffic: %d -> %d", rb.MemoryBytes, rc.MemoryBytes)
	}
}

func TestFig7OriginalRuns(t *testing.T) {
	p := Fig7Original(128)
	r, err := exec.Run(p, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Prints) != 1 {
		t.Fatal("missing print")
	}
}

func TestFillArraysCoversAllRanks(t *testing.T) {
	p := mustParse(`
program t
array a[4]
array b[4,4]
array c[4,4,2]
scalar s
loop L1 {
  s = a[0] + b[0,0] + c[0,0,0]
  print s
}
`)
	q := FillArrays(p)
	r, err := exec.Run(q, nil)
	if err != nil {
		t.Fatal(err)
	}
	if r.Prints[0] == 0 {
		t.Fatal("arrays not filled")
	}
}
