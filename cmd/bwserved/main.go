// Command bwserved serves the bandwidth-analysis pipeline over
// HTTP/JSON: balance reports, verified optimization, and simulated
// cache statistics for mini-language programs or built-in kernels.
//
// Usage:
//
//	bwserved [-addr :8080] [-workers N] [-cache-entries N] \
//	         [-timeout 15s] [-max-timeout 60s] [-max-body 1048576] \
//	         [-max-steps 200000000] [-drain 10s] [-quiet] [-pprof] \
//	         [-sample-every 2s] [-history-samples 512] \
//	         [-max-queue N] [-chaos spec] [-chaos-header]
//
// Endpoints:
//
//	POST /v1/analyze   balance report (+ optional Belady replay);
//	                   "trace": true returns the span tree inline
//	POST /v1/optimize  verified optimizer pipeline, before/after balance
//	                   (accepts "pipeline": an explicit pass string and
//	                   "trace": true for the inline span tree)
//	GET  /v1/kernels   built-in kernel registry
//	GET  /v1/passes    pass registry + cumulative pass/analysis stats
//	GET  /healthz      liveness, build info (Go version, start time,
//	                   kernel/pass counts) + cache stats
//	GET  /metrics      Prometheus text-format metrics (request and
//	                   per-pass latency histograms, analysis cache
//	                   hit/miss/invalidation counters, result-cache
//	                   entry/eviction gauges)
//	GET  /v1/history   ring-buffered time series of the live metrics
//	                   (request rate/latency, cache hit rate, pass
//	                   cost, worker occupancy), sampled -sample-every
//	GET  /debug/dash   single-file live dashboard: inline SVG
//	                   sparklines over /v1/history, no external assets
//	GET  /debug/pprof  net/http/pprof profiles (only with -pprof)
//
// Every response carries an X-Trace-Id header; the same ID appears as
// "trace_id" in the JSON request log, so slow requests can be joined
// to their log lines and inline traces.
//
// Overload protection is always on: identical concurrent requests are
// coalesced onto one pipeline run, requests the queue cannot absorb
// are shed with 503 + Retry-After (-max-queue caps the queue; default
// 4×workers, negative disables), and requests whose deadline cannot
// fit the full pipeline are served degraded (response field
// "degraded", header X-Degraded). Chaos testing is opt-in: -chaos
// installs a server-wide fault-injection spec (see internal/faults;
// e.g. 'pass.panic:nth=3;analysis.slow:rate=0.1,delay=50ms') and
// -chaos-header additionally accepts a per-request spec in the
// X-Chaos request header. Never enable either in production.
//
// Example:
//
//	curl -s localhost:8080/v1/analyze \
//	     -d '{"kernel":"sec21","n":65536}' | jq .balance.text
//
// On SIGINT/SIGTERM the server stops accepting connections and drains
// in-flight requests for up to -drain before exiting.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"io"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"repro/internal/faults"
	"repro/internal/service"
)

func main() {
	addr := flag.String("addr", ":8080", "listen address")
	workers := flag.Int("workers", 0, "max concurrent analyses (0 = GOMAXPROCS)")
	cacheEntries := flag.Int("cache-entries", 256, "result-cache capacity (negative disables)")
	timeout := flag.Duration("timeout", 15*time.Second, "default per-request deadline")
	maxTimeout := flag.Duration("max-timeout", 60*time.Second, "cap on client-requested deadlines")
	maxBody := flag.Int64("max-body", 1<<20, "request body size cap in bytes")
	maxSteps := flag.Int64("max-steps", 200_000_000, "per-run loop-iteration budget (negative disables)")
	drain := flag.Duration("drain", 10*time.Second, "connection-drain window on shutdown")
	quiet := flag.Bool("quiet", false, "suppress request logs")
	pprofFlag := flag.Bool("pprof", false, "mount net/http/pprof handlers under /debug/pprof/")
	sampleEvery := flag.Duration("sample-every", 2*time.Second, "live-history sampling interval (0 disables /v1/history sampling)")
	historySamples := flag.Int("history-samples", 512, "live-history ring-buffer capacity per series")
	maxQueue := flag.Int("max-queue", 0, "max requests waiting for a worker before shedding (0 = 4×workers, negative disables)")
	chaosSpec := flag.String("chaos", "", "server-wide fault-injection spec, e.g. 'pass.panic:nth=3;analysis.slow:rate=0.1,delay=50ms' (chaos testing only)")
	chaosHeader := flag.Bool("chaos-header", false, "accept per-request fault specs in the X-Chaos header (chaos testing only)")
	flag.Parse()

	chaos, err := faults.Parse(*chaosSpec)
	if err != nil {
		fmt.Fprintln(os.Stderr, "bwserved: -chaos:", err)
		os.Exit(2)
	}
	if chaos != nil {
		fmt.Fprintf(os.Stderr, "bwserved: CHAOS MODE: injecting faults: %s\n", chaos)
	}

	var logw io.Writer = os.Stderr
	if *quiet {
		logw = nil
	}
	srv := service.New(service.Config{
		Workers:         *workers,
		CacheEntries:    *cacheEntries,
		DefaultTimeout:  *timeout,
		MaxTimeout:      *maxTimeout,
		MaxBodyBytes:    *maxBody,
		MaxSteps:        *maxSteps,
		LogWriter:       logw,
		EnablePprof:     *pprofFlag,
		SampleInterval:  *sampleEvery,
		HistoryCapacity: *historySamples,
		MaxQueue:        *maxQueue,
		Faults:          chaos,
		ChaosHeader:     *chaosHeader,
	})

	hs := &http.Server{
		Addr:              *addr,
		Handler:           srv.Handler(),
		ReadHeaderTimeout: 5 * time.Second,
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	errc := make(chan error, 1)
	go func() {
		fmt.Fprintf(os.Stderr, "bwserved listening on %s\n", *addr)
		errc <- hs.ListenAndServe()
	}()

	select {
	case err := <-errc:
		fmt.Fprintln(os.Stderr, "bwserved:", err)
		os.Exit(1)
	case <-ctx.Done():
	}

	// Drain: stop accepting, let in-flight requests finish.
	fmt.Fprintln(os.Stderr, "bwserved: shutting down, draining connections")
	sctx, cancel := context.WithTimeout(context.Background(), *drain)
	defer cancel()
	if err := hs.Shutdown(sctx); err != nil && !errors.Is(err, context.DeadlineExceeded) {
		fmt.Fprintln(os.Stderr, "bwserved: shutdown:", err)
		os.Exit(1)
	}
	// After the last request drains: stop the history sampler and
	// flush the JSON-lines request log to stable storage.
	if err := srv.Close(); err != nil {
		fmt.Fprintln(os.Stderr, "bwserved: close:", err)
		os.Exit(1)
	}
}
