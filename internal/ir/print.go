package ir

import (
	"fmt"
	"sort"
	"strings"
)

// Pretty printer. The output is the concrete syntax accepted by
// internal/lang, so Print and lang.Parse round-trip.

// String renders the whole program in source form.
func (p *Program) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "program %s\n", p.Name)
	consts := make([]string, 0, len(p.Consts))
	for k := range p.Consts {
		consts = append(consts, k)
	}
	sort.Strings(consts)
	for _, k := range consts {
		fmt.Fprintf(&b, "const %s = %d\n", k, p.Consts[k])
	}
	for _, a := range p.Arrays {
		dims := make([]string, len(a.Dims))
		for i, d := range a.Dims {
			dims[i] = fmt.Sprint(d)
		}
		fmt.Fprintf(&b, "array %s[%s]\n", a.Name, strings.Join(dims, ","))
	}
	for _, s := range p.Scalars {
		if s.Init != 0 {
			fmt.Fprintf(&b, "scalar %s = %s\n", s.Name, fmtFloat(s.Init))
		} else {
			fmt.Fprintf(&b, "scalar %s\n", s.Name)
		}
	}
	for _, n := range p.Nests {
		b.WriteString("\n")
		b.WriteString(n.String())
	}
	return b.String()
}

// StringAnnotated renders the program like String, but consults ann for
// every statement; a non-empty result is appended to the statement's
// line as a "# ..." comment (on the opening line for block statements).
// The profiler uses it to print per-reference traffic next to the code
// that caused it. The lang parser has no comment syntax, so annotated
// listings are for reading, not round-tripping.
func (p *Program) StringAnnotated(ann func(Stmt) string) string {
	var b strings.Builder
	fmt.Fprintf(&b, "program %s\n", p.Name)
	for _, n := range p.Nests {
		b.WriteString("\n")
		fmt.Fprintf(&b, "loop %s {\n", n.Label)
		writeStmtsAnn(&b, n.Body, 1, ann)
		b.WriteString("}\n")
	}
	return b.String()
}

// String renders one nest.
func (n *Nest) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "loop %s {\n", n.Label)
	writeStmts(&b, n.Body, 1)
	b.WriteString("}\n")
	return b.String()
}

func indent(b *strings.Builder, depth int) {
	for i := 0; i < depth; i++ {
		b.WriteString("  ")
	}
}

func writeStmts(b *strings.Builder, ss []Stmt, depth int) {
	writeStmtsAnn(b, ss, depth, nil)
}

func writeStmtsAnn(b *strings.Builder, ss []Stmt, depth int, ann func(Stmt) string) {
	for _, s := range ss {
		writeStmt(b, s, depth, ann)
	}
}

// comment appends the annotation of s (if any) before the line break.
func comment(b *strings.Builder, s Stmt, ann func(Stmt) string) {
	if ann == nil {
		b.WriteString("\n")
		return
	}
	if txt := ann(s); txt != "" {
		b.WriteString("  # ")
		b.WriteString(txt)
	}
	b.WriteString("\n")
}

func writeStmt(b *strings.Builder, s Stmt, depth int, ann func(Stmt) string) {
	indent(b, depth)
	switch s := s.(type) {
	case *For:
		if s.StepOr1() == 1 {
			fmt.Fprintf(b, "for %s = %s, %s {", s.Var, ExprString(s.Lo), ExprString(s.Hi))
		} else {
			fmt.Fprintf(b, "for %s = %s, %s step %d {", s.Var, ExprString(s.Lo), ExprString(s.Hi), s.StepOr1())
		}
		comment(b, s, ann)
		writeStmtsAnn(b, s.Body, depth+1, ann)
		indent(b, depth)
		b.WriteString("}\n")
	case *Assign:
		fmt.Fprintf(b, "%s = %s", refString(s.LHS), ExprString(s.RHS))
		comment(b, s, ann)
	case *If:
		fmt.Fprintf(b, "if %s {", ExprString(s.Cond))
		comment(b, s, ann)
		writeStmtsAnn(b, s.Then, depth+1, ann)
		indent(b, depth)
		if len(s.Else) > 0 {
			b.WriteString("} else {\n")
			writeStmtsAnn(b, s.Else, depth+1, ann)
			indent(b, depth)
		}
		b.WriteString("}\n")
	case *ReadInput:
		fmt.Fprintf(b, "read %s", refString(s.Target))
		comment(b, s, ann)
	case *Print:
		fmt.Fprintf(b, "print %s", ExprString(s.Arg))
		comment(b, s, ann)
	}
}

func refString(r *Ref) string {
	if r.IsScalar() {
		return r.Name
	}
	parts := make([]string, len(r.Index))
	for i, ix := range r.Index {
		parts[i] = ExprString(ix)
	}
	return r.Name + "[" + strings.Join(parts, ",") + "]"
}

func fmtFloat(v float64) string {
	// %g renders integers without a decimal point ("0", "100") and
	// fractions compactly ("0.4", "1e+06"); the lang lexer accepts both.
	return fmt.Sprintf("%g", v)
}

// precedence for parenthesization, higher binds tighter.
func prec(op Op) int {
	switch op {
	case Or:
		return 1
	case And:
		return 2
	case Lt, Le, Gt, Ge, Eq, Ne:
		return 3
	case Add, Sub:
		return 4
	default: // Mul, Div
		return 5
	}
}

// ExprString renders an expression in concrete syntax.
func ExprString(e Expr) string {
	return exprString(e, 0)
}

func exprString(e Expr, parent int) string {
	switch e := e.(type) {
	case *Num:
		return fmtFloat(e.Val)
	case *Var:
		return e.Name
	case *Ref:
		return refString(e)
	case *Neg:
		return "-" + exprString(e.X, 6)
	case *Call:
		parts := make([]string, len(e.Args))
		for i, a := range e.Args {
			parts[i] = exprString(a, 0)
		}
		return e.Fn + "(" + strings.Join(parts, ",") + ")"
	case *Bin:
		p := prec(e.Op)
		// Left-associative: right child needs parens at equal precedence.
		s := exprString(e.L, p) + " " + e.Op.String() + " " + exprString(e.R, p+1)
		if p < parent {
			return "(" + s + ")"
		}
		return s
	default:
		return fmt.Sprintf("<%T>", e)
	}
}
