package service

import (
	"fmt"
	"sort"
	"sync"

	"repro/internal/analysis"
	"repro/internal/bounds"
	"repro/internal/ir"
	"repro/internal/kernels"
	"repro/internal/machine"
)

// KernelInfo describes one named built-in program the service can
// analyze without the client sending source.
type KernelInfo struct {
	Name        string `json:"name"`
	Description string `json:"description"`
	DefaultN    int    `json:"default_n"`
	MaxN        int    `json:"max_n"`

	// LowerBound is the precomputed data-movement lower bound of the
	// kernel at its default size on the reference machine (see
	// kernelBounds). Absent if the bound engine cannot analyze it.
	LowerBound *KernelBound `json:"lower_bound,omitempty"`
	// LowerBounds holds one precomputed bound row per registered
	// machine (the bound depends on the machine only through its
	// fast-memory capacity, so machines sharing a capacity share the
	// computation). LowerBound is the Origin2000 row of this list.
	LowerBounds []KernelBound `json:"lower_bounds,omitempty"`
	// BestKnownGap is the smallest optimality gap (measured traffic /
	// lower bound) any request to this process has achieved for the
	// kernel; 1.0 means a provably traffic-minimal schedule has been
	// observed. Absent until some request measures the kernel.
	BestKnownGap float64 `json:"best_known_gap,omitempty"`

	build func(n int) (*ir.Program, error)
}

// KernelBound pins down what a KernelInfo's precomputed lower bound
// refers to: the kernel instantiated at N on Machine's fast memory.
type KernelBound struct {
	N          int    `json:"n"`
	Machine    string `json:"machine"`
	FastBytes  int64  `json:"fast_bytes"`
	BoundBytes int64  `json:"bound_bytes"`
	Kind       string `json:"kind"`
}

// kernelBounds lazily computes the lower bound of every built-in at
// its default size on every registered machine, once per process. The
// footprint pass executes each kernel, so this is deliberately not
// done at init; the first GET /v1/kernels pays for it and later calls
// reuse the table. One analysis manager per kernel memoizes the
// expensive parts (footprint run, pebbling structure), so extra
// machines only cost a cheap per-capacity bound query — machines
// sharing a fast-memory capacity even share that. Kernels the engine
// cannot analyze are simply absent.
var kernelBounds = sync.OnceValue(func() map[string][]KernelBound {
	entries := machine.Entries()
	out := make(map[string][]KernelBound, len(kernelTable))
	for name, k := range kernelTable {
		p, _, err := buildKernel(name, k.DefaultN)
		if err != nil {
			continue
		}
		m := analysis.NewManager(p)
		byCap := map[int64]*bounds.Analysis{}
		var rows []KernelBound
		for _, e := range entries {
			fast := bounds.FastCapacity(e.Spec)
			a, seen := byCap[fast]
			if !seen {
				a, err = bounds.FromManager(m, fast, true)
				if err != nil {
					a = nil
				}
				byCap[fast] = a
			}
			if a == nil || a.Best.Bytes <= 0 {
				continue
			}
			rows = append(rows, KernelBound{
				N:          k.DefaultN,
				Machine:    e.Spec.Name,
				FastBytes:  a.FastBytes,
				BoundBytes: a.Best.Bytes,
				Kind:       a.Best.Kind,
			})
		}
		if len(rows) > 0 {
			out[name] = rows
		}
	}
	return out
})

// kernelTable is the registry of built-ins. Size caps keep a single
// request's footprint bounded (the exec step budget bounds its time);
// 2-D and 3-D kernels get smaller caps because their work and storage
// grow superlinearly in n.
var kernelTable = func() map[string]KernelInfo {
	ok := func(f func(n int) *ir.Program) func(int) (*ir.Program, error) {
		return func(n int) (*ir.Program, error) { return f(n), nil }
	}
	list := []KernelInfo{
		{Name: "sec21-write", Description: "Section 2.1 read-modify-write sweep", DefaultN: 100_000, MaxN: 4 << 20, build: ok(kernels.Sec21Write)},
		{Name: "sec21-read", Description: "Section 2.1 pure reduction", DefaultN: 100_000, MaxN: 4 << 20, build: ok(kernels.Sec21Read)},
		{Name: "sec21", Description: "Section 2.1 write+read pair (fusion candidate)", DefaultN: 100_000, MaxN: 4 << 20, build: ok(kernels.Sec21Pair)},
		{Name: "fig6a", Description: "Figure 6(a) original four-loop program", DefaultN: 64, MaxN: 1024, build: ok(kernels.Fig6Original)},
		{Name: "fig6b", Description: "Figure 6(b) hand-fused form", DefaultN: 64, MaxN: 1024, build: ok(kernels.Fig6Fused)},
		{Name: "fig6c", Description: "Figure 6(c) shrunk and peeled form", DefaultN: 64, MaxN: 1024, build: ok(kernels.Fig6ShrunkPeeled)},
		{Name: "fig7", Description: "Figure 7(a) update+sum program", DefaultN: 100_000, MaxN: 4 << 20, build: ok(kernels.Fig7Original)},
		{Name: "fig8", Description: "Figure 8 store-elimination workload", DefaultN: 100_000, MaxN: 4 << 20, build: ok(kernels.Fig8Workload)},
		{Name: "conv", Description: "three-point convolution filter (Figure 1)", DefaultN: 100_000, MaxN: 4 << 20, build: ok(kernels.Convolution)},
		{Name: "dmxpy", Description: "Linpack dmxpy matrix-vector kernel (Figure 1)", DefaultN: 128, MaxN: 1024, build: ok(kernels.Dmxpy)},
		{Name: "matmul", Description: "matrix multiply in j-k-i order (Figure 1)", DefaultN: 64, MaxN: 384, build: ok(kernels.MatmulJKI)},
		{Name: "fft", Description: "radix-2 FFT (n must be a power of two)", DefaultN: 1024, MaxN: 1 << 16, build: kernels.FFT},
		{Name: "sp", Description: "SP-like ADI solver proxy", DefaultN: 16, MaxN: 64, build: ok(kernels.SP)},
		{Name: "sweep3d", Description: "Sweep3D-like wavefront transport sweep", DefaultN: 32, MaxN: 256,
			build: func(n int) (*ir.Program, error) { return kernels.Sweep3D(n, 6), nil }},
	}
	for _, name := range kernels.StrideKernelNames {
		name := name
		list = append(list, KernelInfo{
			Name:        "stride-" + name,
			Description: fmt.Sprintf("Figure 3 unit-stride kernel %s", name),
			DefaultN:    100_000, MaxN: 4 << 20,
			build: func(n int) (*ir.Program, error) { return kernels.StrideKernel(name, n) },
		})
	}
	m := make(map[string]KernelInfo, len(list))
	for _, k := range list {
		m[k.Name] = k
	}
	return m
}()

// Kernels lists the built-in programs, sorted by name.
func Kernels() []KernelInfo {
	out := make([]KernelInfo, 0, len(kernelTable))
	for _, k := range kernelTable {
		out = append(out, k)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}

// buildKernel instantiates a named kernel at size n (0 = its default).
// The effective size is returned so cache keys canonicalize "n omitted"
// and "n = default" to the same entry.
func buildKernel(name string, n int) (*ir.Program, int, error) {
	k, ok := kernelTable[name]
	if !ok {
		return nil, 0, fmt.Errorf("unknown kernel %q (GET /v1/kernels lists the built-ins)", name)
	}
	if n == 0 {
		n = k.DefaultN
	}
	if n < 2 || n > k.MaxN {
		return nil, 0, fmt.Errorf("kernel %q size n=%d outside [2,%d]", name, n, k.MaxN)
	}
	p, err := k.build(n)
	return p, n, err
}
