package exec

import (
	"context"
	"fmt"
	"math"

	"repro/internal/faults"
	"repro/internal/ir"
	"repro/internal/trace"
)

// Closure compiler: an alternative execution engine that compiles a
// program to a tree of Go closures with all name resolution done once,
// ahead of time — array bases and strides, scalar slots and loop
// variable slots become direct pointers. It runs several times faster
// than the tree-walking interpreter (which re-resolves names per
// access), making paper-scale simulations cheap, and it doubles as an
// independent implementation of the executor semantics: the test suite
// runs both engines on the same programs and requires identical
// results and identical traffic.

// Compiled is a program prepared for repeated execution.
type Compiled struct {
	prog *ir.Program
	run  func(env *cenv) error
	// Slot layouts, rebuilt per Run.
	arrayOrder []*ir.Array
}

// cenv is the mutable state of one compiled execution.
type cenv struct {
	mach     Machine
	smach    SiteMachine // non-nil when mach accepts attribution sites
	ctx      context.Context
	lim      Limits
	steps    int64
	arrays   []carr
	scalars  []float64
	ivars    []int64
	res      *Result
	flops    int64
	inputSeq int64
}

// step mirrors interp.step for the compiled engine: one loop-body
// iteration of budget accounting plus periodic context polling.
func (env *cenv) step() error {
	env.steps++
	if env.lim.MaxSteps > 0 && env.steps > env.lim.MaxSteps {
		return fmt.Errorf("%w (limit %d iterations)", ErrStepBudget, env.lim.MaxSteps)
	}
	if env.steps&pollMask == 0 {
		if err := env.ctx.Err(); err != nil {
			return fmt.Errorf("%w after %d iterations: %v", ErrCanceled, env.steps, err)
		}
	}
	return nil
}

type carr struct {
	base   int64
	data   []float64
	dims   []int
	stride []int64
}

// Compile validates and compiles the program.
func Compile(p *ir.Program) (*Compiled, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	c := &compiler{
		prog:     p,
		arrayIdx: map[string]int{},
		scalIdx:  map[string]int{},
		ivarIdx:  map[string]int{},
	}
	for i, a := range p.Arrays {
		c.arrayIdx[a.Name] = i
	}
	for i, s := range p.Scalars {
		c.scalIdx[s.Name] = i
	}
	var nests []func(env *cenv) error
	for _, n := range p.Nests {
		label := n.Label
		body, err := c.stmts(n.Body)
		if err != nil {
			return nil, fmt.Errorf("exec: compile nest %s: %w", n.Label, err)
		}
		nests = append(nests, func(env *cenv) error {
			if err := body(env); err != nil {
				return fmt.Errorf("exec: nest %s: %w", label, err)
			}
			return nil
		})
	}
	run := func(env *cenv) error {
		for _, n := range nests {
			if err := n(env); err != nil {
				return err
			}
		}
		return nil
	}
	return &Compiled{prog: p, run: run, arrayOrder: p.Arrays}, nil
}

// Run executes the compiled program against a (possibly nil) machine.
func (cp *Compiled) Run(h Machine) (*Result, error) {
	return cp.RunCtx(context.Background(), h, Limits{})
}

// RunCtx is Run with cancellation and a step budget, with the same
// semantics as the package-level RunCtx. Compiled programs are
// stateless between runs, so one Compiled may serve many concurrent
// RunCtx calls, each with its own context.
func (cp *Compiled) RunCtx(ctx context.Context, h Machine, lim Limits) (*Result, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	if faults.Should(ctx, faults.ExecCancel) {
		return nil, fmt.Errorf("%w: injected %s", ErrCanceled, faults.ExecCancel)
	}
	ctx, span := trace.StartSpan(ctx, "exec.run", trace.String("program", cp.prog.Name),
		trace.String("engine", "compiled"))
	env := &cenv{
		mach:  h,
		smach: siteMachine(h),
		ctx:   ctx,
		lim:   lim,
		res:   &Result{Scalars: map[string]float64{}, arrays: map[string][]float64{}},
	}
	var next int64
	for _, a := range cp.arrayOrder {
		ca := carr{base: next, data: make([]float64, a.Size()), dims: a.Dims}
		s := int64(1)
		for _, d := range a.Dims {
			ca.stride = append(ca.stride, s)
			s *= int64(d)
		}
		env.arrays = append(env.arrays, ca)
		next += a.Bytes()
		next = (next + align - 1) &^ (align - 1)
		next += align
	}
	env.scalars = make([]float64, len(cp.prog.Scalars))
	for i, s := range cp.prog.Scalars {
		env.scalars[i] = s.Init
	}
	env.ivars = make([]int64, maxIvars(cp.prog))
	if err := cp.run(env); err != nil {
		span.End(trace.Int("steps", env.steps), trace.String("error", err.Error()))
		return nil, err
	}
	if h != nil {
		h.Flush()
	}
	for i, s := range cp.prog.Scalars {
		env.res.Scalars[s.Name] = env.scalars[i]
	}
	for i, a := range cp.arrayOrder {
		env.res.arrays[a.Name] = env.arrays[i].data
	}
	env.res.Flops = env.flops
	span.End(trace.Int("steps", env.steps), trace.Int("flops", env.flops))
	return env.res, nil
}

// maxIvars counts the deepest loop-variable usage; slots are assigned
// per distinct variable name at compile time, so the count of distinct
// names suffices.
func maxIvars(p *ir.Program) int {
	names := map[string]bool{}
	var visit func([]ir.Stmt)
	visit = func(ss []ir.Stmt) {
		for _, s := range ss {
			switch s := s.(type) {
			case *ir.For:
				names[s.Var] = true
				visit(s.Body)
			case *ir.If:
				visit(s.Then)
				visit(s.Else)
			}
		}
	}
	for _, n := range p.Nests {
		visit(n.Body)
	}
	return len(names)
}

type compiler struct {
	prog     *ir.Program
	arrayIdx map[string]int
	scalIdx  map[string]int
	ivarIdx  map[string]int // loop variable -> slot
	nextIvar int
}

type fExpr func(env *cenv) (float64, error)
type iExpr func(env *cenv) (int64, error)
type stmtF func(env *cenv) error

func (c *compiler) ivarSlot(name string) int {
	if i, ok := c.ivarIdx[name]; ok {
		return i
	}
	i := c.nextIvar
	c.ivarIdx[name] = i
	c.nextIvar++
	return i
}

func (c *compiler) stmts(ss []ir.Stmt) (stmtF, error) {
	var fs []stmtF
	for _, s := range ss {
		f, err := c.stmt(s)
		if err != nil {
			return nil, err
		}
		fs = append(fs, f)
	}
	switch len(fs) {
	case 0:
		return func(env *cenv) error { return nil }, nil
	case 1:
		return fs[0], nil
	}
	return func(env *cenv) error {
		for _, f := range fs {
			if err := f(env); err != nil {
				return err
			}
		}
		return nil
	}, nil
}

func (c *compiler) stmt(s ir.Stmt) (stmtF, error) {
	switch s := s.(type) {
	case *ir.For:
		lo, err := c.intExpr(s.Lo)
		if err != nil {
			return nil, err
		}
		hi, err := c.intExpr(s.Hi)
		if err != nil {
			return nil, err
		}
		// The slot must be assigned before compiling the body so inner
		// references resolve to it.
		slot := c.ivarSlot(s.Var)
		body, err := c.stmts(s.Body)
		if err != nil {
			return nil, err
		}
		step := int64(s.StepOr1())
		return func(env *cenv) error {
			l, err := lo(env)
			if err != nil {
				return err
			}
			h, err := hi(env)
			if err != nil {
				return err
			}
			for v := l; v <= h; v += step {
				if err := env.step(); err != nil {
					return err
				}
				env.ivars[slot] = v
				if err := body(env); err != nil {
					return err
				}
			}
			return nil
		}, nil
	case *ir.Assign:
		rhs, err := c.expr(s.RHS)
		if err != nil {
			return nil, err
		}
		store, err := c.store(s.LHS)
		if err != nil {
			return nil, err
		}
		return func(env *cenv) error {
			v, err := rhs(env)
			if err != nil {
				return err
			}
			return store(env, v)
		}, nil
	case *ir.If:
		cond, err := c.expr(s.Cond)
		if err != nil {
			return nil, err
		}
		then, err := c.stmts(s.Then)
		if err != nil {
			return nil, err
		}
		els, err := c.stmts(s.Else)
		if err != nil {
			return nil, err
		}
		return func(env *cenv) error {
			v, err := cond(env)
			if err != nil {
				return err
			}
			if v != 0 {
				return then(env)
			}
			return els(env)
		}, nil
	case *ir.ReadInput:
		store, err := c.store(s.Target)
		if err != nil {
			return nil, err
		}
		return func(env *cenv) error {
			v := inputValue(env.inputSeq)
			env.inputSeq++
			return store(env, v)
		}, nil
	case *ir.Print:
		arg, err := c.expr(s.Arg)
		if err != nil {
			return nil, err
		}
		return func(env *cenv) error {
			v, err := arg(env)
			if err != nil {
				return err
			}
			env.res.Prints = append(env.res.Prints, v)
			return nil
		}, nil
	default:
		return nil, fmt.Errorf("unknown statement %T", s)
	}
}

// addr compiles an array reference into an offset computation.
func (c *compiler) addr(r *ir.Ref) (func(env *cenv) (int64, error), int, error) {
	ai, ok := c.arrayIdx[r.Name]
	if !ok {
		return nil, 0, fmt.Errorf("unknown array %q", r.Name)
	}
	decl := c.prog.Arrays[ai]
	if len(r.Index) != len(decl.Dims) {
		return nil, 0, fmt.Errorf("rank mismatch on %q", r.Name)
	}
	var idx []iExpr
	for _, ixe := range r.Index {
		f, err := c.intExpr(ixe)
		if err != nil {
			return nil, 0, err
		}
		idx = append(idx, f)
	}
	dims := decl.Dims
	name := r.Name
	return func(env *cenv) (int64, error) {
		a := &env.arrays[ai]
		var off int64
		for k, f := range idx {
			v, err := f(env)
			if err != nil {
				return 0, err
			}
			if v < 0 || v >= int64(dims[k]) {
				return 0, fmt.Errorf("index %d out of bounds [0,%d) in %s", v, dims[k], name)
			}
			off += v * a.stride[k]
		}
		return off, nil
	}, ai, nil
}

func (c *compiler) store(r *ir.Ref) (func(env *cenv, v float64) error, error) {
	if r.IsScalar() {
		if si, ok := c.scalIdx[r.Name]; ok {
			return func(env *cenv, v float64) error {
				env.scalars[si] = v
				return nil
			}, nil
		}
		return nil, fmt.Errorf("unknown scalar %q", r.Name)
	}
	off, ai, err := c.addr(r)
	if err != nil {
		return nil, err
	}
	site := uint32(r.Site) // per-ref constant, captured at compile time
	return func(env *cenv, v float64) error {
		o, err := off(env)
		if err != nil {
			return err
		}
		a := &env.arrays[ai]
		if env.smach != nil {
			env.smach.StoreSite(a.base+o*ir.ElemSize, ir.ElemSize, site)
		} else if env.mach != nil {
			env.mach.Store(a.base+o*ir.ElemSize, ir.ElemSize)
		}
		a.data[o] = v
		return nil
	}, nil
}

func (c *compiler) intExpr(x ir.Expr) (iExpr, error) {
	switch x := x.(type) {
	case *ir.Num:
		i := int64(x.Val)
		if float64(i) != x.Val {
			return nil, fmt.Errorf("non-integer literal %v in integer context", x.Val)
		}
		return func(*cenv) (int64, error) { return i, nil }, nil
	case *ir.Var:
		if slot, ok := c.ivarIdx[x.Name]; ok {
			return func(env *cenv) (int64, error) { return env.ivars[slot], nil }, nil
		}
		if v, ok := c.prog.Consts[x.Name]; ok {
			return func(*cenv) (int64, error) { return v, nil }, nil
		}
		if si, ok := c.scalIdx[x.Name]; ok {
			name := x.Name
			return func(env *cenv) (int64, error) {
				f := env.scalars[si]
				i := int64(f)
				if float64(i) != f {
					return 0, fmt.Errorf("scalar %q holds non-integer %v in integer context", name, f)
				}
				return i, nil
			}, nil
		}
		return nil, fmt.Errorf("unknown variable %q in integer context", x.Name)
	case *ir.Neg:
		f, err := c.intExpr(x.X)
		if err != nil {
			return nil, err
		}
		return func(env *cenv) (int64, error) {
			v, err := f(env)
			return -v, err
		}, nil
	case *ir.Bin:
		l, err := c.intExpr(x.L)
		if err != nil {
			return nil, err
		}
		r, err := c.intExpr(x.R)
		if err != nil {
			return nil, err
		}
		switch x.Op {
		case ir.Add:
			return func(env *cenv) (int64, error) {
				a, err := l(env)
				if err != nil {
					return 0, err
				}
				b, err := r(env)
				return a + b, err
			}, nil
		case ir.Sub:
			return func(env *cenv) (int64, error) {
				a, err := l(env)
				if err != nil {
					return 0, err
				}
				b, err := r(env)
				return a - b, err
			}, nil
		case ir.Mul:
			return func(env *cenv) (int64, error) {
				a, err := l(env)
				if err != nil {
					return 0, err
				}
				b, err := r(env)
				return a * b, err
			}, nil
		case ir.Div:
			return func(env *cenv) (int64, error) {
				a, err := l(env)
				if err != nil {
					return 0, err
				}
				b, err := r(env)
				if err != nil {
					return 0, err
				}
				if b == 0 {
					return 0, fmt.Errorf("integer division by zero")
				}
				return a / b, nil
			}, nil
		default:
			return nil, fmt.Errorf("operator %s not allowed in integer context", x.Op)
		}
	case *ir.Call:
		if x.Fn == "mod" && len(x.Args) == 2 {
			l, err := c.intExpr(x.Args[0])
			if err != nil {
				return nil, err
			}
			r, err := c.intExpr(x.Args[1])
			if err != nil {
				return nil, err
			}
			return func(env *cenv) (int64, error) {
				a, err := l(env)
				if err != nil {
					return 0, err
				}
				b, err := r(env)
				if err != nil {
					return 0, err
				}
				if b == 0 {
					return 0, fmt.Errorf("mod by zero")
				}
				return a % b, nil
			}, nil
		}
		return nil, fmt.Errorf("call %s not allowed in integer context", x.Fn)
	default:
		return nil, fmt.Errorf("expression %s not allowed in integer context", ir.ExprString(x))
	}
}

func (c *compiler) expr(x ir.Expr) (fExpr, error) {
	switch x := x.(type) {
	case *ir.Num:
		v := x.Val
		return func(*cenv) (float64, error) { return v, nil }, nil
	case *ir.Var:
		if si, ok := c.scalIdx[x.Name]; ok {
			return func(env *cenv) (float64, error) { return env.scalars[si], nil }, nil
		}
		if slot, ok := c.ivarIdx[x.Name]; ok {
			return func(env *cenv) (float64, error) { return float64(env.ivars[slot]), nil }, nil
		}
		if v, ok := c.prog.Consts[x.Name]; ok {
			f := float64(v)
			return func(*cenv) (float64, error) { return f, nil }, nil
		}
		return nil, fmt.Errorf("unknown variable %q", x.Name)
	case *ir.Ref:
		if x.IsScalar() {
			if si, ok := c.scalIdx[x.Name]; ok {
				return func(env *cenv) (float64, error) { return env.scalars[si], nil }, nil
			}
			return nil, fmt.Errorf("unknown scalar %q", x.Name)
		}
		off, ai, err := c.addr(x)
		if err != nil {
			return nil, err
		}
		site := uint32(x.Site) // per-ref constant, captured at compile time
		return func(env *cenv) (float64, error) {
			o, err := off(env)
			if err != nil {
				return 0, err
			}
			a := &env.arrays[ai]
			if env.smach != nil {
				env.smach.LoadSite(a.base+o*ir.ElemSize, ir.ElemSize, site)
			} else if env.mach != nil {
				env.mach.Load(a.base+o*ir.ElemSize, ir.ElemSize)
			}
			return a.data[o], nil
		}, nil
	case *ir.Neg:
		f, err := c.expr(x.X)
		if err != nil {
			return nil, err
		}
		return func(env *cenv) (float64, error) {
			v, err := f(env)
			return -v, err
		}, nil
	case *ir.Bin:
		return c.binExpr(x)
	case *ir.Call:
		return c.callExpr(x)
	default:
		return nil, fmt.Errorf("unknown expression %T", x)
	}
}

func (c *compiler) binExpr(x *ir.Bin) (fExpr, error) {
	l, err := c.expr(x.L)
	if err != nil {
		return nil, err
	}
	r, err := c.expr(x.R)
	if err != nil {
		return nil, err
	}
	// Short-circuit logical operators.
	switch x.Op {
	case ir.And:
		return func(env *cenv) (float64, error) {
			a, err := l(env)
			if err != nil || a == 0 {
				return 0, err
			}
			b, err := r(env)
			if err != nil {
				return 0, err
			}
			return b2f(b != 0), nil
		}, nil
	case ir.Or:
		return func(env *cenv) (float64, error) {
			a, err := l(env)
			if err != nil {
				return 0, err
			}
			if a != 0 {
				return 1, nil
			}
			b, err := r(env)
			if err != nil {
				return 0, err
			}
			return b2f(b != 0), nil
		}, nil
	}
	type binop func(a, b float64, env *cenv) float64
	var op binop
	switch x.Op {
	case ir.Add:
		op = func(a, b float64, env *cenv) float64 { env.flop(1); return a + b }
	case ir.Sub:
		op = func(a, b float64, env *cenv) float64 { env.flop(1); return a - b }
	case ir.Mul:
		op = func(a, b float64, env *cenv) float64 { env.flop(1); return a * b }
	case ir.Div:
		op = func(a, b float64, env *cenv) float64 { env.flop(1); return a / b }
	case ir.Lt:
		op = func(a, b float64, _ *cenv) float64 { return b2f(a < b) }
	case ir.Le:
		op = func(a, b float64, _ *cenv) float64 { return b2f(a <= b) }
	case ir.Gt:
		op = func(a, b float64, _ *cenv) float64 { return b2f(a > b) }
	case ir.Ge:
		op = func(a, b float64, _ *cenv) float64 { return b2f(a >= b) }
	case ir.Eq:
		op = func(a, b float64, _ *cenv) float64 { return b2f(a == b) }
	case ir.Ne:
		op = func(a, b float64, _ *cenv) float64 { return b2f(a != b) }
	default:
		return nil, fmt.Errorf("unknown operator %v", x.Op)
	}
	return func(env *cenv) (float64, error) {
		a, err := l(env)
		if err != nil {
			return 0, err
		}
		b, err := r(env)
		if err != nil {
			return 0, err
		}
		return op(a, b, env), nil
	}, nil
}

func (env *cenv) flop(n int64) {
	env.flops += n
	if env.mach != nil {
		env.mach.AddFlops(n)
	}
}

func (c *compiler) callExpr(x *ir.Call) (fExpr, error) {
	var args []fExpr
	for _, a := range x.Args {
		f, err := c.expr(a)
		if err != nil {
			return nil, err
		}
		args = append(args, f)
	}
	need := func(n int) error {
		if len(args) != n {
			return fmt.Errorf("intrinsic %s expects %d args, got %d", x.Fn, n, len(args))
		}
		return nil
	}
	evalArgs := func(env *cenv, buf []float64) error {
		for i, f := range args {
			v, err := f(env)
			if err != nil {
				return err
			}
			buf[i] = v
		}
		return nil
	}
	switch x.Fn {
	case "f":
		if err := need(2); err != nil {
			return nil, err
		}
		return func(env *cenv) (float64, error) {
			var b [2]float64
			if err := evalArgs(env, b[:]); err != nil {
				return 0, err
			}
			env.flop(2)
			return 0.5*b[0] + 0.25*b[1], nil
		}, nil
	case "g":
		if err := need(2); err != nil {
			return nil, err
		}
		return func(env *cenv) (float64, error) {
			var b [2]float64
			if err := evalArgs(env, b[:]); err != nil {
				return 0, err
			}
			env.flop(2)
			return b[0]*0.75 + b[1], nil
		}, nil
	case "sqrt":
		if err := need(1); err != nil {
			return nil, err
		}
		return func(env *cenv) (float64, error) {
			var b [1]float64
			if err := evalArgs(env, b[:]); err != nil {
				return 0, err
			}
			env.flop(1)
			return math.Sqrt(math.Abs(b[0])), nil
		}, nil
	case "sin":
		if err := need(1); err != nil {
			return nil, err
		}
		return func(env *cenv) (float64, error) {
			var b [1]float64
			if err := evalArgs(env, b[:]); err != nil {
				return 0, err
			}
			env.flop(1)
			return math.Sin(b[0]), nil
		}, nil
	case "cos":
		if err := need(1); err != nil {
			return nil, err
		}
		return func(env *cenv) (float64, error) {
			var b [1]float64
			if err := evalArgs(env, b[:]); err != nil {
				return 0, err
			}
			env.flop(1)
			return math.Cos(b[0]), nil
		}, nil
	case "abs":
		if err := need(1); err != nil {
			return nil, err
		}
		return func(env *cenv) (float64, error) {
			var b [1]float64
			if err := evalArgs(env, b[:]); err != nil {
				return 0, err
			}
			return math.Abs(b[0]), nil
		}, nil
	case "min":
		if err := need(2); err != nil {
			return nil, err
		}
		return func(env *cenv) (float64, error) {
			var b [2]float64
			if err := evalArgs(env, b[:]); err != nil {
				return 0, err
			}
			return math.Min(b[0], b[1]), nil
		}, nil
	case "max":
		if err := need(2); err != nil {
			return nil, err
		}
		return func(env *cenv) (float64, error) {
			var b [2]float64
			if err := evalArgs(env, b[:]); err != nil {
				return 0, err
			}
			return math.Max(b[0], b[1]), nil
		}, nil
	case "mod":
		if err := need(2); err != nil {
			return nil, err
		}
		return func(env *cenv) (float64, error) {
			var b [2]float64
			if err := evalArgs(env, b[:]); err != nil {
				return 0, err
			}
			if b[1] == 0 {
				return 0, fmt.Errorf("mod by zero")
			}
			return math.Mod(b[0], b[1]), nil
		}, nil
	default:
		return nil, fmt.Errorf("unknown intrinsic %q", x.Fn)
	}
}
